//! The [`Recorder`]: one handle tying together per-thread trace rings
//! and the metrics registry.
//!
//! A `Recorder` is either *off* (`inner == None`, the default and a
//! `const`-constructible state, so the global no-op recorder is a
//! `static` and the disabled path is literally a branch on a static) or
//! *on* (an `Arc` shared by the engine, its worker threads, the
//! exporters, and any harness that wants to read metrics after the
//! run). Cloning is a refcount bump; every handle sees the same data.
//!
//! Hot-path discipline: engines fetch [`Tracer`]s and metric handles
//! once at setup and store them in worker state. The per-event cost is
//! then `Option` branches (disabled) or a few relaxed atomic stores
//! (enabled) — never a registry lookup, never an allocation.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram, HistogramCore, HistogramSnapshot};
use crate::ring::{Phase, SpanKind, ThreadTraceDump, TraceRecord, TraceRing};
use crate::{perfetto, prometheus};

/// Default per-thread trace ring capacity (records, not bytes).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Observability configuration carried by `EngineConfig`/`RunPolicy`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch; off means the recorder is the no-op handle.
    pub enabled: bool,
    /// Capacity of each per-thread trace ring.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Tracing + metrics on, default ring capacity.
    pub fn enabled() -> ObsConfig {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    /// Everything off (the default).
    pub fn disabled() -> ObsConfig {
        ObsConfig::default()
    }

    /// Override the per-thread ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> ObsConfig {
        assert!(capacity >= 1);
        self.ring_capacity = capacity;
        self
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<HistogramCore>>>,
}

/// Metric identity: name plus rendered `{label="value",...}` suffix.
/// `BTreeMap` ordering gives the exposition a stable, grouped layout.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: String,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name '{name}'"
        );
        let rendered = if labels.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
                .collect();
            format!("{{{}}}", pairs.join(","))
        };
        MetricKey {
            name: name.to_string(),
            labels: rendered,
        }
    }
}

struct ThreadEntry {
    name: String,
    tid: u32,
    ring: Arc<TraceRing>,
}

struct Inner {
    epoch: Instant,
    ring_capacity: usize,
    threads: Mutex<Vec<ThreadEntry>>,
    registry: Registry,
}

/// The observability handle threaded through engines. See module docs.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(
                f,
                "Recorder(on, {} threads)",
                inner.threads.lock().unwrap().len()
            ),
            None => write!(f, "Recorder(off)"),
        }
    }
}

impl Recorder {
    /// The disabled recorder (`const`, so it can live in a `static`).
    pub const fn off() -> Recorder {
        Recorder { inner: None }
    }

    /// The process-wide disabled recorder: the "branch on a static" the
    /// engines take when observability was never configured.
    pub fn noop() -> &'static Recorder {
        static NOOP: Recorder = Recorder::off();
        &NOOP
    }

    /// Build a recorder from config (`off()` when `cfg.enabled` is false).
    pub fn new(cfg: &ObsConfig) -> Recorder {
        if !cfg.enabled {
            return Recorder::off();
        }
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                ring_capacity: cfg.ring_capacity,
                threads: Mutex::new(Vec::new()),
                registry: Registry::default(),
            })),
        }
    }

    /// Whether this recorder is collecting anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since this recorder's epoch — the same timebase every
    /// [`TraceRecord::ts_ns`] this recorder produced uses, so clock-offset
    /// probes sampled through it are directly comparable with trace
    /// timestamps. Returns 0 on a disabled recorder.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Register a traced thread and get its tracer. Call once per
    /// worker at setup (allocates the ring); a disabled recorder
    /// returns the inert tracer without allocating.
    pub fn tracer(&self, thread_name: &str) -> Tracer {
        let Some(inner) = &self.inner else {
            return Tracer::off();
        };
        let ring = Arc::new(TraceRing::new(inner.ring_capacity));
        let mut threads = inner.threads.lock().unwrap();
        let tid = threads.len() as u32 + 1;
        threads.push(ThreadEntry {
            name: thread_name.to_string(),
            tid,
            ring: Arc::clone(&ring),
        });
        Tracer {
            inner: Some(TracerInner {
                ring,
                epoch: inner.epoch,
            }),
        }
    }

    /// Counter handle (registered on first use; idempotent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::off();
        };
        let mut map = inner.registry.counters.lock().unwrap();
        let cell = map
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Gauge handle (registered on first use; idempotent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::off();
        };
        let mut map = inner.registry.gauges.lock().unwrap();
        let cell = map
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Histogram handle (registered on first use; idempotent).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::off();
        };
        let mut map = inner.registry.histograms.lock().unwrap();
        let core = map
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Arc::new(HistogramCore::default()));
        Histogram(Some(Arc::clone(core)))
    }

    /// Dump every registered thread's retained records (up to `last`
    /// per thread), for stall snapshots and exports. Empty when off.
    pub fn recent_traces(&self, last: usize) -> Vec<ThreadTraceDump> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let threads = inner.threads.lock().unwrap();
        threads
            .iter()
            .map(|t| {
                let mut records = t.ring.snapshot();
                let start = records.len().saturating_sub(last);
                records.drain(..start);
                ThreadTraceDump {
                    thread: t.name.clone(),
                    tid: t.tid,
                    pushed: t.ring.pushed(),
                    records,
                }
            })
            .collect()
    }

    /// All counter values as `(name, labels, value)`, sorted.
    pub fn counter_values(&self) -> Vec<(String, String, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let map = inner.registry.counters.lock().unwrap();
        map.iter()
            .map(|(k, v)| {
                (
                    k.name.clone(),
                    k.labels.clone(),
                    v.load(std::sync::atomic::Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// All gauge values as `(name, labels, value)`, sorted.
    pub fn gauge_values(&self) -> Vec<(String, String, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let map = inner.registry.gauges.lock().unwrap();
        map.iter()
            .map(|(k, v)| {
                (
                    k.name.clone(),
                    k.labels.clone(),
                    v.load(std::sync::atomic::Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// All histogram snapshots as `(name, labels, snapshot)`, sorted.
    pub fn histogram_values(&self) -> Vec<(String, String, HistogramSnapshot)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let map = inner.registry.histograms.lock().unwrap();
        map.iter()
            .map(|(k, core)| {
                (
                    k.name.clone(),
                    k.labels.clone(),
                    Histogram(Some(Arc::clone(core))).snapshot(),
                )
            })
            .collect()
    }

    /// Render everything recorded so far as Chrome/Perfetto trace-event
    /// JSON (load at `ui.perfetto.dev` or `chrome://tracing`).
    pub fn perfetto_json(&self, process_name: &str) -> String {
        perfetto::trace_json(process_name, &self.recent_traces(usize::MAX))
    }

    /// Render the metrics registry in Prometheus text exposition 0.0.4.
    pub fn prometheus_text(&self) -> String {
        prometheus::render(self)
    }
}

#[derive(Clone)]
struct TracerInner {
    ring: Arc<TraceRing>,
    epoch: Instant,
}

/// Per-thread trace handle. All record methods are allocation-free;
/// on the disabled handle they are a single branch.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tracer({})",
            if self.inner.is_some() { "on" } else { "off" }
        )
    }
}

impl Tracer {
    /// The inert tracer (what a disabled recorder hands out).
    pub const fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether records go anywhere. Use to skip *computing* record
    /// payloads (e.g. `Instant::now()` for span timing) when off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn push(&self, kind: SpanKind, phase: Phase, a: u64, b: u64) {
        if let Some(inner) = &self.inner {
            inner.ring.push(TraceRecord {
                ts_ns: inner.epoch.elapsed().as_nanos() as u64,
                kind: kind as u8,
                phase: phase as u8,
                a,
                b,
                dur_ns: 0,
            });
        }
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&self, kind: SpanKind, a: u64, b: u64) {
        self.push(kind, Phase::Instant, a, b);
    }

    /// Open a duration span (pair with [`Tracer::end`], same kind).
    #[inline]
    pub fn begin(&self, kind: SpanKind, a: u64) {
        self.push(kind, Phase::Begin, a, 0);
    }

    /// Close the innermost open span of `kind`.
    #[inline]
    pub fn end(&self, kind: SpanKind, a: u64, b: u64) {
        self.push(kind, Phase::End, a, b);
    }

    /// Record a whole span in one record: started at `start`, ending
    /// now. One record per span (instead of a begin/end pair) means an
    /// overwrite-oldest ring can never separate a span from its
    /// duration, so exports always carry `dur_ns` — begin the span by
    /// capturing `Instant::now()` (only when [`Tracer::is_enabled`]) and
    /// close it here.
    #[inline]
    pub fn complete(&self, kind: SpanKind, a: u64, b: u64, start: Instant) {
        if let Some(inner) = &self.inner {
            let dur_ns = start.elapsed().as_nanos() as u64;
            inner.ring.push(TraceRecord {
                ts_ns: start.saturating_duration_since(inner.epoch).as_nanos() as u64,
                kind: kind as u8,
                phase: Phase::Complete as u8,
                a,
                b,
                dur_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_hands_out_inert_handles() {
        let rec = Recorder::new(&ObsConfig::disabled());
        assert!(!rec.is_enabled());
        let t = rec.tracer("w0");
        assert!(!t.is_enabled());
        t.instant(SpanKind::NodeRun, 1, 2); // goes nowhere, must not panic
        rec.counter("sim_x_total", &[]).inc();
        assert!(rec.recent_traces(8).is_empty());
        assert!(rec.counter_values().is_empty());
        assert!(Recorder::noop().inner.is_none());
    }

    #[test]
    fn enabled_recorder_collects_per_thread() {
        let rec = Recorder::new(&ObsConfig::enabled().with_ring_capacity(8));
        let t0 = rec.tracer("w0");
        let t1 = rec.tracer("w1");
        t0.begin(SpanKind::NodeRun, 7);
        t0.end(SpanKind::NodeRun, 7, 3);
        t1.instant(SpanKind::NullSend, 2, 40);
        let dumps = rec.recent_traces(16);
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].thread, "w0");
        assert_eq!(dumps[0].tid, 1);
        assert_eq!(dumps[0].records.len(), 2);
        assert_eq!(dumps[0].records[0].span_kind(), Some(SpanKind::NodeRun));
        assert_eq!(dumps[1].records[0].a, 2);
        // Timestamps are monotone per thread.
        assert!(dumps[0].records[0].ts_ns <= dumps[0].records[1].ts_ns);
    }

    #[test]
    fn metric_handles_share_storage_by_key() {
        let rec = Recorder::new(&ObsConfig::enabled());
        let a = rec.counter("sim_events_total", &[("engine", "hj")]);
        let b = rec.counter("sim_events_total", &[("engine", "hj")]);
        let other = rec.counter("sim_events_total", &[("engine", "seq")]);
        a.add(3);
        b.add(4);
        other.inc();
        assert_eq!(a.get(), 7);
        let values = rec.counter_values();
        assert_eq!(values.len(), 2);
        assert_eq!(values[0].2 + values[1].2, 8);

        let h = rec.histogram("sim_latency_ns", &[]);
        h.record(100);
        rec.histogram("sim_latency_ns", &[]).record(200);
        assert_eq!(rec.histogram_values()[0].2.count, 2);

        let g = rec.gauge("sim_depth", &[]);
        g.set(9);
        g.set_max(4);
        assert_eq!(rec.gauge_values()[0].2, 9);
    }

    #[test]
    fn recent_traces_clamps_to_last_n() {
        let rec = Recorder::new(&ObsConfig::enabled().with_ring_capacity(64));
        let t = rec.tracer("w");
        for i in 0..10 {
            t.instant(SpanKind::EventDeliver, i, 0);
        }
        let dump = &rec.recent_traces(3)[0];
        assert_eq!(dump.records.len(), 3);
        assert_eq!(dump.records[0].a, 7);
        assert_eq!(dump.pushed, 10);
    }
}
