//! Prometheus text exposition (format 0.0.4): renderer, format lint,
//! and a minimal HTTP scrape endpoint.
//!
//! The endpoint is deliberately tiny — a blocking accept loop on a
//! `std::net::TcpListener` answering every request with the full
//! exposition — because its job is letting `des-node` be scraped
//! mid-run, not being a web server. It serves **plaintext only**; like
//! the rest of the `sim-net` fabric, TLS/auth is a tracked ROADMAP
//! follow-up, so bind it to localhost or a trusted network.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::metrics::bucket_upper_bound;
use crate::Recorder;

/// Render `recorder`'s registry as text exposition 0.0.4. Families are
/// emitted in sorted order: counters, gauges, then histograms.
pub fn render(recorder: &Recorder) -> String {
    let mut out = String::with_capacity(1024);
    let mut last_family = String::new();
    let type_line = |out: &mut String, last: &mut String, name: &str, kind: &str| {
        if *last != name {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            *last = name.to_string();
        }
    };

    for (name, labels, value) in recorder.counter_values() {
        type_line(&mut out, &mut last_family, &name, "counter");
        let _ = writeln!(out, "{name}{labels} {value}");
    }
    for (name, labels, value) in recorder.gauge_values() {
        type_line(&mut out, &mut last_family, &name, "gauge");
        let _ = writeln!(out, "{name}{labels} {value}");
    }
    for (name, labels, snap) in recorder.histogram_values() {
        type_line(&mut out, &mut last_family, &name, "histogram");
        // `labels` arrives rendered ("{k=\"v\"}" or ""); splice `le` in.
        let prefix = if labels.is_empty() {
            String::new()
        } else {
            let inner = &labels[1..labels.len() - 1];
            format!("{inner},")
        };
        let mut cumulative = 0u64;
        for (i, &count) in snap.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{{prefix}le=\"{}\"}} {cumulative}",
                bucket_upper_bound(i)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum);
        let _ = writeln!(out, "{name}_count{labels} {}", snap.count);
    }
    out
}

/// Validate text exposition shape. Returns the number of samples on
/// success; the first offending line on failure. Checks: every line is
/// a comment/`# TYPE`/`# HELP` or a `name{labels} value` sample, TYPE
/// comes before its family's samples, each histogram series' `_count`
/// equals its `+Inf` bucket (series are distinguished by their non-`le`
/// labels — one family carries one series per engine/rank label set),
/// and at least one sample is present.
pub fn lint(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut typed: Vec<String> = Vec::new();
    let mut inf_buckets: Vec<(String, u64)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| Err(format!("line {}: {what}: '{line}'", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return err("malformed TYPE");
                };
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return err("unknown metric type");
                }
                typed.push(name.to_string());
            } else if !rest.starts_with("HELP ") {
                return err("unknown comment directive");
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
            return err("invalid metric name");
        }
        let mut rest = &line[name_end..];
        let mut labels = "";
        // The series identity: every label pair except `le`, in line
        // order. Pairs a histogram's bucket lines with its `_sum` and
        // `_count` even when one family has several label sets.
        let mut series_labels = String::new();
        if rest.starts_with('{') {
            // Label values are quoted and may contain any escaped byte —
            // including '}', ',' and '=' — so both the closing brace and
            // the pair boundaries must be found quote-aware.
            let bytes = rest.as_bytes();
            let mut i = 1;
            let mut in_quotes = false;
            let mut close = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' if in_quotes => i += 1,
                    b'"' => in_quotes = !in_quotes,
                    b'}' if !in_quotes => {
                        close = Some(i);
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            let Some(close) = close else {
                return err("unclosed label braces");
            };
            labels = &rest[1..close];
            rest = &rest[close + 1..];
            let mut s = labels;
            while !s.is_empty() {
                let Some(eq) = s.find('=') else {
                    return err("label without '='");
                };
                let key = &s[..eq];
                if key.is_empty()
                    || !key
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    return err("invalid label name");
                }
                s = &s[eq + 1..];
                if !s.starts_with('"') {
                    return err("label value must be quoted");
                }
                let vb = s.as_bytes();
                let mut j = 1;
                let mut closed = false;
                while j < vb.len() {
                    match vb[j] {
                        b'\\' => j += 1,
                        b'"' => {
                            closed = true;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if !closed {
                    return err("unterminated label value");
                }
                if key != "le" {
                    if !series_labels.is_empty() {
                        series_labels.push(',');
                    }
                    series_labels.push_str(key);
                    series_labels.push('=');
                    series_labels.push_str(&s[..j + 1]);
                }
                s = &s[j + 1..];
                match s.strip_prefix(',') {
                    Some(tail) => s = tail,
                    None if s.is_empty() => {}
                    None => return err("expected ',' between labels"),
                }
            }
        }
        let value_text = rest.trim();
        let value_token = value_text.split_whitespace().next().unwrap_or("");
        if value_token.parse::<f64>().is_err()
            && !matches!(value_token, "+Inf" | "-Inf" | "NaN")
        {
            return err("sample value is not a number");
        }
        // The family of histogram series is the base name.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.iter().any(|t| t == base))
            .unwrap_or(name);
        if !typed.iter().any(|t| t == family) {
            return err("sample precedes its # TYPE declaration");
        }
        if name.ends_with("_bucket") && labels.contains("le=\"+Inf\"") {
            let v = value_token.parse::<f64>().unwrap_or(-1.0);
            inf_buckets.push((format!("{family}{{{series_labels}}}"), v as u64));
        }
        if let Some(base) = name.strip_suffix("_count") {
            if typed.iter().any(|t| t == base) {
                counts.push((
                    format!("{base}{{{series_labels}}}"),
                    value_token.parse::<f64>().unwrap_or(-1.0) as u64,
                ));
            }
        }
        samples += 1;
    }
    for (series, count) in &counts {
        match inf_buckets.iter().find(|(s, _)| s == series) {
            Some((_, inf)) if inf == count => {}
            Some((_, inf)) => {
                return Err(format!(
                    "histogram '{series}': +Inf bucket {inf} != _count {count}"
                ))
            }
            None => return Err(format!("histogram '{series}' has no +Inf bucket")),
        }
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

/// A running scrape endpoint (see module docs). Dropped or
/// [`MetricsServer::stop`]ped, it closes the listener and joins.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `recorder`'s
    /// exposition on `/` and `/metrics` until stopped.
    pub fn serve(addr: impl ToSocketAddrs, recorder: Recorder) -> std::io::Result<MetricsServer> {
        MetricsServer::serve_with(addr, move || render(&recorder))
    }

    /// Like [`MetricsServer::serve`] but with a caller-supplied body
    /// producer, re-evaluated per scrape — the fleet coordinator uses
    /// this to serve the merged rank-labelled exposition.
    pub fn serve_with(
        addr: impl ToSocketAddrs,
        body: impl Fn() -> String + Send + Sync + 'static,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(mut conn) = conn else { continue };
                    let _ = serve_one(&mut conn, &body);
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(conn: &mut TcpStream, body: &(impl Fn() -> String + ?Sized)) -> std::io::Result<()> {
    let mut buf = [0u8; 1024];
    let n = conn.read(&mut buf)?;
    // "METHOD path HTTP/1.x" — anything less parses as an unknown path.
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .map(|target| target.split('?').next().unwrap_or(target))
        .unwrap_or("");
    let (status, content_type, body) = if matches!(path, "/" | "/metrics") {
        ("200 OK", "text/plain; version=0.0.4", body())
    } else {
        (
            "404 Not Found",
            "text/plain",
            format!("404: no such path '{path}'; the exposition is at /metrics\n"),
        )
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(header.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsConfig;

    fn sample_recorder() -> Recorder {
        let rec = Recorder::new(&ObsConfig::enabled());
        rec.counter("sim_events_delivered_total", &[("engine", "hj")])
            .add(42);
        rec.gauge("sim_run_wall_ns", &[]).set(1_000);
        let h = rec.histogram("sim_node_run_ns", &[]);
        h.record(0);
        h.record(3);
        h.record(900);
        rec
    }

    #[test]
    fn render_passes_lint_and_orders_series() {
        let text = render(&sample_recorder());
        assert!(text.contains("# TYPE sim_events_delivered_total counter"));
        assert!(text.contains("sim_events_delivered_total{engine=\"hj\"} 42"));
        assert!(text.contains("# TYPE sim_node_run_ns histogram"));
        assert!(text.contains("sim_node_run_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sim_node_run_ns_count 3"));
        assert!(text.contains("sim_node_run_ns_sum 903"));
        let samples = lint(&text).expect("rendered exposition must lint");
        assert!(samples >= 6, "{samples} samples:\n{text}");
        // Buckets are cumulative and monotone.
        let zero = text
            .lines()
            .find(|l| l.contains("le=\"0\""))
            .expect("zero bucket");
        assert!(zero.ends_with(" 1"), "{zero}");
        let three = text
            .lines()
            .find(|l| l.contains("le=\"3\""))
            .expect("bucket for 3");
        assert!(three.ends_with(" 2"), "{three}");
    }

    #[test]
    fn lint_accepts_punctuation_inside_label_values() {
        // Engine names carry their config: '=', ',', '[', ']' (and a
        // '}' or an escaped quote) are all legal inside a quoted value.
        let text = "# TYPE sim_x counter\n\
                    sim_x{engine=\"sharded[k=2,greedy-cut]\"} 1\n\
                    sim_x{engine=\"dist[p=0/2]\",role=\"a}b\"} 2\n\
                    sim_x{engine=\"q\\\"uote\"} 3\n";
        assert_eq!(lint(text), Ok(3));
    }

    #[test]
    fn lint_pairs_histogram_series_by_label_set() {
        // One family, two rank label sets with different counts: each
        // series' +Inf must be checked against its own _count, never a
        // sibling's.
        let two_ranks = "# TYPE sim_h histogram\n\
            sim_h_bucket{rank=\"0\",le=\"+Inf\"} 2\n\
            sim_h_sum{rank=\"0\"} 5\n\
            sim_h_count{rank=\"0\"} 2\n\
            sim_h_bucket{rank=\"1\",le=\"+Inf\"} 9\n\
            sim_h_sum{rank=\"1\"} 40\n\
            sim_h_count{rank=\"1\"} 9\n";
        assert_eq!(lint(two_ranks), Ok(6));
        let mismatched = two_ranks.replace("sim_h_count{rank=\"1\"} 9", "sim_h_count{rank=\"1\"} 8");
        let err = lint(&mismatched).unwrap_err();
        assert!(err.contains("rank=\"1\""), "{err}");
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        assert!(lint("").is_err());
        assert!(lint("sim_x 1\n").is_err(), "sample without TYPE");
        assert!(lint("# TYPE sim_x counter\nsim_x notanumber\n").is_err());
        assert!(lint("# TYPE sim_x counter\n9bad 1\n").is_err());
        assert!(lint("# TYPE sim_x counter\nsim_x{le=unquoted} 1\n").is_err());
        assert!(
            lint("# TYPE sim_h histogram\nsim_h_count 3\n").is_err(),
            "histogram without +Inf bucket"
        );
        assert!(lint(
            "# TYPE sim_h histogram\nsim_h_bucket{le=\"+Inf\"} 2\nsim_h_sum 5\nsim_h_count 3\n"
        )
        .is_err());
        assert!(lint("# TYPE sim_x counter\nsim_x 1\n").is_ok());
    }

    #[test]
    fn server_answers_a_raw_http_scrape() {
        let server = MetricsServer::serve("127.0.0.1:0", sample_recorder()).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let (header, body) = response.split_once("\r\n\r\n").expect("header/body split");
        assert!(header.starts_with("HTTP/1.0 200 OK"), "{header}");
        assert!(header.contains("text/plain"));
        lint(body).expect("served exposition must lint");
        assert!(body.contains("sim_events_delivered_total"));
        server.stop();
    }

    fn raw_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let (header, body) = response.split_once("\r\n\r\n").expect("header/body split");
        (header.to_string(), body.to_string())
    }

    #[test]
    fn unknown_paths_get_a_404_with_a_hint() {
        let server = MetricsServer::serve("127.0.0.1:0", sample_recorder()).unwrap();
        for good in ["/", "/metrics", "/metrics?format=text"] {
            let (header, body) = raw_get(server.local_addr(), good);
            assert!(header.starts_with("HTTP/1.0 200 OK"), "{good}: {header}");
            lint(&body).expect("exposition must lint");
        }
        let (header, body) = raw_get(server.local_addr(), "/favicon.ico");
        assert!(header.starts_with("HTTP/1.0 404 Not Found"), "{header}");
        assert!(body.contains("/metrics"), "hint body: {body}");
        server.stop();
    }

    #[test]
    fn serve_with_renders_a_custom_body_per_scrape() {
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let server = MetricsServer::serve_with("127.0.0.1:0", move || {
            let n = h.fetch_add(1, Ordering::Relaxed) + 1;
            format!("# TYPE fleet_scrapes counter\nfleet_scrapes {n}\n")
        })
        .unwrap();
        let (_, body1) = raw_get(server.local_addr(), "/metrics");
        let (_, body2) = raw_get(server.local_addr(), "/metrics");
        assert!(body1.contains("fleet_scrapes 1"), "{body1}");
        assert!(body2.contains("fleet_scrapes 2"), "{body2}");
        server.stop();
    }
}
