//! Lock-free fixed-capacity trace ring buffers.
//!
//! Each traced thread owns one [`TraceRing`]: a circular array of
//! fixed-size [`TraceRecord`]s written with relaxed atomic stores and a
//! single monotonically increasing head counter. Pushing never
//! allocates, never locks, and never blocks — once the ring is full the
//! oldest records are overwritten, so a ring always holds the *last*
//! `capacity` records, which is exactly what a stall snapshot or a
//! post-run trace export wants.
//!
//! Readers ([`TraceRing::snapshot`]) are expected to run at quiesce
//! points (after the run, or from the watchdog while workers are
//! wedged). A snapshot raced against a writer can observe a *torn*
//! record — fields from two different pushes — which is acceptable for
//! diagnostics and kept well-defined (no UB) by storing every field as
//! a relaxed atomic rather than through an `UnsafeCell`.
//!
//! The ring is multi-producer capable (the head is claimed with a
//! `fetch_add`): most engines give each worker thread its own ring, but
//! the task-pool engines (`hj`), whose tasks migrate between pool
//! threads, share one ring across workers.

use std::sync::atomic::{AtomicU64, Ordering};

/// What a trace record describes. Kept in sync with the engines'
/// instrumentation points; exporters render [`SpanKind::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// A payload event was delivered to a port (`a` = node, `b` = time).
    EventDeliver = 0,
    /// A node body ran (`a` = node or batch id, `b` = events processed).
    NodeRun = 1,
    /// First `try_lock_all` attempt for a node (`a` = node).
    TrylockAttempt = 2,
    /// A bounded-retry `try_lock_all` re-attempt (`a` = node, `b` = attempt).
    TrylockRetry = 3,
    /// A backoff wait between lock retries (`a` = node).
    Backoff = 4,
    /// A NULL message was sent (`a` = destination shard/node, `b` = time).
    NullSend = 5,
    /// A NULL message was received (`a` = source shard, `b` = time).
    NullRecv = 6,
    /// A cross-shard send blocked on a full mailbox (`a` = dst shard).
    MailboxStall = 7,
    /// A rebalance epoch barrier (`a` = epoch).
    RebalanceBarrier = 8,
    /// A node migrated between shards (`a` = node, `b` = dst shard).
    Migration = 9,
    /// A Time Warp rollback (`a` = node, `b` = rollback depth).
    Rollback = 10,
    /// The transport flushed a batch frame (`a` = peer, `b` = bytes).
    NetFlush = 11,
    /// One replication run of a scenario sweep (`a` = task id, `b` =
    /// worker id). Emitted as a Begin on the submitting thread when the
    /// task is enqueued and an End on whichever worker finished it, so
    /// pairing the two ([`crate::span::pair_spans`]) yields the
    /// cross-thread queue+execute latency per run.
    RunExec = 12,
    /// One wire frame crossing a rank boundary (`a` = globally unique
    /// frame id `src_process << 32 | seq`, `b` = message count).
    /// Emitted as a Begin on the sending rank when the frame is framed
    /// and an End on the receiving rank when it is decoded, so pairing
    /// the two over an offset-corrected fleet merge
    /// ([`crate::fleet`]) yields cross-rank wire latency spans.
    WireSpan = 13,
    /// A shard sat blocked waiting for a NULL promise from a peer
    /// (`a` = peer shard it was waiting on, `b` = wait in microseconds).
    NullWait = 14,
}

impl SpanKind {
    /// Stable human-readable name used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::EventDeliver => "event_deliver",
            SpanKind::NodeRun => "node_run",
            SpanKind::TrylockAttempt => "trylock_attempt",
            SpanKind::TrylockRetry => "trylock_retry",
            SpanKind::Backoff => "backoff",
            SpanKind::NullSend => "null_send",
            SpanKind::NullRecv => "null_recv",
            SpanKind::MailboxStall => "mailbox_stall",
            SpanKind::RebalanceBarrier => "rebalance_barrier",
            SpanKind::Migration => "migration",
            SpanKind::Rollback => "rollback",
            SpanKind::NetFlush => "net_flush",
            SpanKind::RunExec => "run_exec",
            SpanKind::WireSpan => "wire_span",
            SpanKind::NullWait => "null_wait",
        }
    }

    /// Inverse of `kind as u8`; `None` for bytes from a torn record.
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::EventDeliver,
            1 => SpanKind::NodeRun,
            2 => SpanKind::TrylockAttempt,
            3 => SpanKind::TrylockRetry,
            4 => SpanKind::Backoff,
            5 => SpanKind::NullSend,
            6 => SpanKind::NullRecv,
            7 => SpanKind::MailboxStall,
            8 => SpanKind::RebalanceBarrier,
            9 => SpanKind::Migration,
            10 => SpanKind::Rollback,
            11 => SpanKind::NetFlush,
            12 => SpanKind::RunExec,
            13 => SpanKind::WireSpan,
            14 => SpanKind::NullWait,
            _ => return None,
        })
    }
}

/// Span phase: a point event, one end of a duration span, or a whole
/// span in one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Phase {
    /// A point-in-time marker.
    #[default]
    Instant = 0,
    /// Duration span opens.
    Begin = 1,
    /// Duration span closes.
    End = 2,
    /// A complete span: `ts_ns` is the start, `dur_ns` the duration.
    /// One record per span means an overwrite-oldest ring can never
    /// orphan a begin from its end, so exported spans always carry their
    /// duration — the property cross-thread critical-path analysis needs.
    Complete = 3,
}

impl Phase {
    /// Inverse of `phase as u8` (defaults torn bytes to `Instant`).
    pub fn from_u8(v: u8) -> Phase {
        match v {
            1 => Phase::Begin,
            2 => Phase::End,
            3 => Phase::Complete,
            _ => Phase::Instant,
        }
    }
}

/// One fixed-size trace record. `ts_ns` is nanoseconds since the
/// recorder's epoch; `a`/`b` carry kind-specific payloads (node ids,
/// shard ids, depths — see [`SpanKind`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the owning recorder was created.
    pub ts_ns: u64,
    /// `SpanKind as u8` (decode with [`SpanKind::from_u8`]).
    pub kind: u8,
    /// `Phase as u8` (decode with [`Phase::from_u8`]).
    pub phase: u8,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
    /// Span duration in nanoseconds; meaningful only for
    /// [`Phase::Complete`] records, zero otherwise.
    pub dur_ns: u64,
}

impl TraceRecord {
    /// Decoded kind, `None` if the byte came from a torn read.
    pub fn span_kind(&self) -> Option<SpanKind> {
        SpanKind::from_u8(self.kind)
    }
}

/// One slot of the ring: every field a relaxed atomic so concurrent
/// snapshot reads are defined behavior (torn, but never UB).
#[derive(Default)]
struct Slot {
    ts_ns: AtomicU64,
    /// `kind | phase << 8`, packed so a record costs four stores.
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    dur_ns: AtomicU64,
}

/// Fixed-capacity overwrite-oldest trace ring. See the module docs for
/// the concurrency contract.
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl TraceRing {
    /// A ring holding the last `capacity` records (`capacity >= 1`).
    pub fn new(capacity: usize) -> TraceRing {
        assert!(capacity >= 1, "trace ring capacity must be >= 1");
        TraceRing {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of records this ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (not capped by capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Append a record, overwriting the oldest once full. Lock-free and
    /// allocation-free; five relaxed stores plus one `fetch_add`.
    #[inline]
    pub fn push(&self, rec: TraceRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        slot.ts_ns.store(rec.ts_ns, Ordering::Relaxed);
        slot.meta
            .store(rec.kind as u64 | (rec.phase as u64) << 8, Ordering::Relaxed);
        slot.a.store(rec.a, Ordering::Relaxed);
        slot.b.store(rec.b, Ordering::Relaxed);
        slot.dur_ns.store(rec.dur_ns, Ordering::Relaxed);
    }

    /// Copy out the retained records, oldest first. Run this at a
    /// quiesce point; a racing writer can tear individual records.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let n = head.min(cap);
        let mut out = Vec::with_capacity(n as usize);
        for seq in (head - n)..head {
            let slot = &self.slots[(seq % cap) as usize];
            let meta = slot.meta.load(Ordering::Relaxed);
            out.push(TraceRecord {
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                kind: (meta & 0xff) as u8,
                phase: ((meta >> 8) & 0xff) as u8,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
            });
        }
        out
    }
}

/// The retained records of one traced thread, captured at a quiesce
/// point — attached to stall snapshots and fed to the Perfetto export.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ThreadTraceDump {
    /// Thread name as registered with the recorder (e.g. `"shard-3"`).
    pub thread: String,
    /// Stable per-recorder thread id (Perfetto `tid`).
    pub tid: u32,
    /// Total records the thread ever pushed (wraps are `pushed -
    /// records.len()`).
    pub pushed: u64,
    /// Retained records, oldest first.
    pub records: Vec<TraceRecord>,
}

impl ThreadTraceDump {
    /// The last `n` records, oldest first (for compact stall reports).
    pub fn last(&self, n: usize) -> &[TraceRecord] {
        let start = self.records.len().saturating_sub(n);
        &self.records[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            ts_ns: i,
            kind: SpanKind::NodeRun as u8,
            phase: Phase::Instant as u8,
            a: i * 10,
            b: i * 100,
            dur_ns: 0,
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let ring = TraceRing::new(4);
        assert_eq!(ring.snapshot(), vec![]);
        for i in 0..3 {
            ring.push(rec(i));
        }
        // Below capacity: everything retained in push order.
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0], rec(0));
        assert_eq!(snap[2], rec(2));

        for i in 3..11 {
            ring.push(rec(i));
        }
        // Wrapped twice: the last 4 pushes survive, oldest first.
        assert_eq!(ring.pushed(), 11);
        let snap = ring.snapshot();
        assert_eq!(snap, vec![rec(7), rec(8), rec(9), rec(10)]);
    }

    #[test]
    fn wraps_exactly_at_capacity_boundary() {
        let ring = TraceRing::new(2);
        ring.push(rec(0));
        ring.push(rec(1));
        assert_eq!(ring.snapshot(), vec![rec(0), rec(1)]);
        ring.push(rec(2)); // overwrites rec(0)
        assert_eq!(ring.snapshot(), vec![rec(1), rec(2)]);
    }

    #[test]
    fn capacity_one_ring_keeps_only_latest() {
        let ring = TraceRing::new(1);
        for i in 0..5 {
            ring.push(rec(i));
        }
        assert_eq!(ring.snapshot(), vec![rec(4)]);
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn kind_round_trips_through_u8() {
        for kind in [
            SpanKind::EventDeliver,
            SpanKind::NodeRun,
            SpanKind::TrylockAttempt,
            SpanKind::TrylockRetry,
            SpanKind::Backoff,
            SpanKind::NullSend,
            SpanKind::NullRecv,
            SpanKind::MailboxStall,
            SpanKind::RebalanceBarrier,
            SpanKind::Migration,
            SpanKind::Rollback,
            SpanKind::NetFlush,
            SpanKind::RunExec,
            SpanKind::WireSpan,
            SpanKind::NullWait,
        ] {
            assert_eq!(SpanKind::from_u8(kind as u8), Some(kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(SpanKind::from_u8(200), None);
    }

    #[test]
    fn dump_last_clamps() {
        let dump = ThreadTraceDump {
            thread: "t".into(),
            tid: 1,
            pushed: 3,
            records: vec![rec(0), rec(1), rec(2)],
        };
        assert_eq!(dump.last(2), &[rec(1), rec(2)]);
        assert_eq!(dump.last(10).len(), 3);
    }
}
