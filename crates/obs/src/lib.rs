//! # sim-obs — always-on observability for the simulation workspace
//!
//! The paper's argument is quantitative (available parallelism,
//! lock-retry behavior, communication/compute breakdowns), so the
//! engines need a way to show *where time goes inside a run*, not just
//! end-of-run aggregate counters. This crate is that layer:
//!
//! * [`TraceRing`] — lock-free fixed-capacity per-thread ring buffers
//!   of typed [`TraceRecord`]s (event delivery, trylock retry/backoff,
//!   NULL send/receive, mailbox stalls, rebalance barriers, net
//!   flushes). Overwrite-oldest, zero allocation on the hot path.
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — a metrics registry with
//!   HDR-style log₂-bucketed histograms for latency/depth/retry
//!   distributions.
//! * [`Recorder`] / [`Tracer`] — the handles engines thread through
//!   `RunPolicy`/`EngineConfig`. A disabled recorder is a `None`
//!   inside a `static` ([`Recorder::noop`]), so the off path costs one
//!   branch and allocates nothing.
//! * Exporters: [`perfetto`] (Chrome/Perfetto trace-event JSON),
//!   [`prometheus`] (text exposition + scrape endpoint + format lint),
//!   and [`json`] (the hand-rolled writer/parser both lean on — this
//!   workspace is offline and has no serde).

pub mod fleet;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod prometheus;
mod recorder;
pub mod ring;
pub mod span;

pub use fleet::{ClockEstimate, FleetCollector, RankReport, StragglerEntry, StragglerReport};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, ARENA_HIGH_WATER,
    ARENA_LIVE, DRAIN_BATCH_EVENTS, NUM_BUCKETS,
};
pub use recorder::{ObsConfig, Recorder, Tracer, DEFAULT_RING_CAPACITY};
pub use ring::{Phase, SpanKind, ThreadTraceDump, TraceRecord, TraceRing};
pub use span::{critical_path, pair_spans, CriticalPathReport, PairedSpan, ThreadBusy};
