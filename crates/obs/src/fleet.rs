//! Fleet-wide observability: merging per-rank telemetry into one view.
//!
//! A distributed run has one recorder per process, each with its own
//! monotonic epoch, its own trace rings, and its own metrics registry.
//! This module is the coordinator side of DESIGN.md §16: workers
//! serialize a [`RankReport`] (metrics snapshot + sampled trace-ring
//! flush) into an opaque blob the transport ships as a `Telemetry`
//! frame, and the coordinator's [`FleetCollector`] absorbs those
//! reports plus NTP-style ping/pong stamps per link to produce
//!
//! * one **offset-corrected Perfetto timeline** — rank → process
//!   track, shard/net thread → thread track — where cross-rank
//!   `WireSpan` begin/end pairs line up after each rank's timestamps
//!   are shifted by the estimated clock offset;
//! * one **rank-labelled Prometheus exposition**, every series from
//!   every rank with a `rank="N"` label spliced in;
//! * a **straggler report** rolling `sim_null_wait_ns_total{peer=...}`
//!   up into "who stalled whom".
//!
//! The blob codec lives here, not in `sim-net`: the wire carries it
//! opaquely, and `sim-obs` must stay dependency-free of the transport.
//! It is total like the wire codec — corrupt input decodes to an
//! error, never a panic.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, HistogramSnapshot};
use crate::recorder::Recorder;
use crate::ring::{ThreadTraceDump, TraceRecord};
use crate::span::{critical_path, CriticalPathReport};
use crate::{perfetto, PairedSpan};

/// Blob format version (bumped independently of the wire version).
const BLOB_VERSION: u8 = 1;

// ---------------------------------------------------------------------
// Blob codec (LEB128 varints + length-prefixed strings, total decode).
// ---------------------------------------------------------------------

fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Malformed telemetry blob. Deliberately unstructured: the collector
/// drops bad reports, it does not dissect them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobError(pub &'static str);

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed telemetry blob: {}", self.0)
    }
}

impl std::error::Error for BlobError {}

fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, BlobError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = buf.get(*pos).ok_or(BlobError("truncated varint"))?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(BlobError("varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(BlobError("varint too long"));
        }
    }
}

fn get_len(buf: &[u8], pos: &mut usize) -> Result<usize, BlobError> {
    let len = get_uvarint(buf, pos)?;
    let len = usize::try_from(len).map_err(|_| BlobError("length overflows usize"))?;
    // Every counted element costs at least one byte, so a count beyond
    // the remaining bytes is corruption — reject it before allocating.
    if len > buf.len() - *pos {
        return Err(BlobError("length exceeds remaining bytes"));
    }
    Ok(len)
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, BlobError> {
    let len = get_len(buf, pos)?;
    let bytes = &buf[*pos..*pos + len];
    *pos += len;
    String::from_utf8(bytes.to_vec()).map_err(|_| BlobError("string is not UTF-8"))
}

// ---------------------------------------------------------------------
// RankReport
// ---------------------------------------------------------------------

/// One rank's telemetry snapshot: cumulative metric values plus the
/// retained trace rings, stamped with a sequence number so stale
/// reports (telemetry is lossy and unordered across links) never
/// overwrite newer ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankReport {
    /// Sending process rank.
    pub rank: u64,
    /// Engine name the rank runs (e.g. `dist[p=1/2]`).
    pub engine: String,
    /// Monotonic per-rank report number.
    pub seq: u64,
    /// `(name, rendered_labels, value)` — cumulative counter values.
    pub counters: Vec<(String, String, u64)>,
    /// `(name, rendered_labels, value)` — current gauge values.
    pub gauges: Vec<(String, String, u64)>,
    /// `(name, rendered_labels, snapshot)` — histogram distributions.
    pub histograms: Vec<(String, String, HistogramSnapshot)>,
    /// Trace-ring flush, one dump per registered thread. Timestamps
    /// are in the *sender's* recorder timebase; the collector corrects
    /// them with the link's clock-offset estimate.
    pub traces: Vec<ThreadTraceDump>,
}

impl RankReport {
    /// Snapshot `recorder` into a report, keeping the last `last_n`
    /// records of each trace ring.
    pub fn capture(rank: u64, engine: &str, seq: u64, recorder: &Recorder, last_n: usize) -> Self {
        RankReport {
            rank,
            engine: engine.to_string(),
            seq,
            counters: recorder.counter_values(),
            gauges: recorder.gauge_values(),
            histograms: recorder.histogram_values(),
            traces: recorder.recent_traces(last_n),
        }
    }

    /// Serialize into the opaque blob the transport ships.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256);
        buf.push(BLOB_VERSION);
        put_uvarint(&mut buf, self.rank);
        put_str(&mut buf, &self.engine);
        put_uvarint(&mut buf, self.seq);
        for series in [&self.counters, &self.gauges] {
            put_uvarint(&mut buf, series.len() as u64);
            for (name, labels, value) in series.iter() {
                put_str(&mut buf, name);
                put_str(&mut buf, labels);
                put_uvarint(&mut buf, *value);
            }
        }
        put_uvarint(&mut buf, self.histograms.len() as u64);
        for (name, labels, snap) in &self.histograms {
            put_str(&mut buf, name);
            put_str(&mut buf, labels);
            put_uvarint(&mut buf, snap.sum);
            put_uvarint(&mut buf, snap.count);
            put_uvarint(&mut buf, snap.buckets.len() as u64);
            for &b in &snap.buckets {
                put_uvarint(&mut buf, b);
            }
        }
        put_uvarint(&mut buf, self.traces.len() as u64);
        for dump in &self.traces {
            put_str(&mut buf, &dump.thread);
            put_uvarint(&mut buf, u64::from(dump.tid));
            put_uvarint(&mut buf, dump.pushed);
            put_uvarint(&mut buf, dump.records.len() as u64);
            for rec in &dump.records {
                put_uvarint(&mut buf, rec.ts_ns);
                buf.push(rec.kind);
                buf.push(rec.phase);
                put_uvarint(&mut buf, rec.a);
                put_uvarint(&mut buf, rec.b);
                put_uvarint(&mut buf, rec.dur_ns);
            }
        }
        buf
    }

    /// Total decode: corrupt or truncated blobs return an error.
    pub fn decode(buf: &[u8]) -> Result<RankReport, BlobError> {
        let mut pos = 0usize;
        let &version = buf.first().ok_or(BlobError("empty blob"))?;
        if version != BLOB_VERSION {
            return Err(BlobError("unknown blob version"));
        }
        pos += 1;
        let rank = get_uvarint(buf, &mut pos)?;
        let engine = get_str(buf, &mut pos)?;
        let seq = get_uvarint(buf, &mut pos)?;
        let scalar_series = |pos: &mut usize| -> Result<Vec<(String, String, u64)>, BlobError> {
            let n = get_len(buf, pos)?;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let name = get_str(buf, pos)?;
                let labels = get_str(buf, pos)?;
                let value = get_uvarint(buf, pos)?;
                out.push((name, labels, value));
            }
            Ok(out)
        };
        let counters = scalar_series(&mut pos)?;
        let gauges = scalar_series(&mut pos)?;
        let nhist = get_len(buf, &mut pos)?;
        let mut histograms = Vec::with_capacity(nhist);
        for _ in 0..nhist {
            let name = get_str(buf, &mut pos)?;
            let labels = get_str(buf, &mut pos)?;
            let sum = get_uvarint(buf, &mut pos)?;
            let count = get_uvarint(buf, &mut pos)?;
            let nbuckets = get_len(buf, &mut pos)?;
            let mut buckets = Vec::with_capacity(nbuckets);
            for _ in 0..nbuckets {
                buckets.push(get_uvarint(buf, &mut pos)?);
            }
            histograms.push((name, labels, HistogramSnapshot { sum, count, buckets }));
        }
        let ndumps = get_len(buf, &mut pos)?;
        let mut traces = Vec::with_capacity(ndumps);
        for _ in 0..ndumps {
            let thread = get_str(buf, &mut pos)?;
            let tid = u32::try_from(get_uvarint(buf, &mut pos)?)
                .map_err(|_| BlobError("tid overflows u32"))?;
            let pushed = get_uvarint(buf, &mut pos)?;
            let nrecs = get_len(buf, &mut pos)?;
            let mut records = Vec::with_capacity(nrecs);
            for _ in 0..nrecs {
                let ts_ns = get_uvarint(buf, &mut pos)?;
                let &kind = buf.get(pos).ok_or(BlobError("truncated record"))?;
                let &phase = buf.get(pos + 1).ok_or(BlobError("truncated record"))?;
                pos += 2;
                records.push(TraceRecord {
                    ts_ns,
                    kind,
                    phase,
                    a: get_uvarint(buf, &mut pos)?,
                    b: get_uvarint(buf, &mut pos)?,
                    dur_ns: get_uvarint(buf, &mut pos)?,
                });
            }
            traces.push(ThreadTraceDump {
                thread,
                tid,
                pushed,
                records,
            });
        }
        if pos != buf.len() {
            return Err(BlobError("trailing bytes after report"));
        }
        Ok(RankReport {
            rank,
            engine,
            seq,
            counters,
            gauges,
            histograms,
            traces,
        })
    }
}

// ---------------------------------------------------------------------
// Clock-offset estimation
// ---------------------------------------------------------------------

/// NTP-style per-link clock estimate, built from four-timestamp
/// ping/pong exchanges (`t1` pinger send, `t2` peer receive, `t3` peer
/// reply, `t4` pinger receive — all in the respective recorder's
/// nanosecond timebase). The responder's processing delay `t3 - t2`
/// cancels out; the surviving error is the link's path asymmetry,
/// bounded by RTT/2 — so the estimate from the minimum-RTT sample is
/// kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockEstimate {
    /// `peer_clock - local_clock`, from the best (min-RTT) sample.
    pub offset_ns: i64,
    /// RTT of the best sample (processing delay excluded).
    pub rtt_ns: u64,
    /// Number of samples folded in.
    pub samples: u64,
}

impl ClockEstimate {
    /// Fold in one exchange; keeps the estimate from the sample with
    /// the smallest RTT seen so far.
    pub fn observe(&mut self, t1: u64, t2: u64, t3: u64, t4: u64) {
        let rtt = (t4 as i128 - t1 as i128) - (t3 as i128 - t2 as i128);
        if rtt < 0 {
            // Torn or reordered stamps: not a usable sample.
            return;
        }
        let rtt = rtt as u64;
        let offset = ((t2 as i128 - t1 as i128) + (t3 as i128 - t4 as i128)) / 2;
        if self.samples == 0 || rtt < self.rtt_ns {
            self.offset_ns = offset.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
            self.rtt_ns = rtt;
        }
        self.samples += 1;
    }
}

// ---------------------------------------------------------------------
// Straggler attribution
// ---------------------------------------------------------------------

/// One rank's blocked-on-NULL wait toward one peer shard, as reported
/// through `sim_null_wait_ns_total{peer=...}`.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerEntry {
    /// Rank that sat waiting.
    pub rank: u64,
    /// Shard it was waiting on (the label value of `peer`).
    pub peer: String,
    /// Total nanoseconds blocked.
    pub wait_ns: u64,
    /// Fraction of the fleet-wide NULL wait this link accounts for.
    pub share: f64,
}

/// "Who stalled whom" across the fleet, sorted worst-first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StragglerReport {
    /// Per (waiting rank, blamed peer shard) totals, descending wait.
    pub entries: Vec<StragglerEntry>,
    /// Fleet-wide total blocked-on-NULL nanoseconds.
    pub total_wait_ns: u64,
}

impl StragglerReport {
    /// The worst offender, if any wait was recorded at all.
    pub fn top(&self) -> Option<&StragglerEntry> {
        self.entries.first()
    }
}

impl fmt::Display for StragglerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "no blocked-on-NULL waits recorded");
        }
        writeln!(
            f,
            "fleet blocked-on-NULL wait: {:.3} ms total",
            self.total_wait_ns as f64 / 1e6
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "  rank {} waited {:.3} ms on shard {} ({:.1}% of fleet wait)",
                e.rank,
                e.wait_ns as f64 / 1e6,
                e.peer,
                e.share * 100.0
            )?;
        }
        if let Some(top) = self.top() {
            writeln!(
                f,
                "  => straggler: shard {} (stalled rank {} for {:.1}% of fleet wait)",
                top.peer,
                top.rank,
                top.share * 100.0
            )?;
        }
        Ok(())
    }
}

/// Extract one label's value from a pre-rendered label string like
/// `{engine="dist[p=0/2]",peer="3"}`. Values in this workspace never
/// contain an escaped quote before the closing one we need, and the
/// straggler labels are shard numbers, so a simple scan suffices.
fn label_value<'a>(labels: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("{key}=\"");
    let start = labels.find(&needle)? + needle.len();
    let rest = &labels[start..];
    rest.find('"').map(|end| &rest[..end])
}

// ---------------------------------------------------------------------
// FleetCollector
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct RankState {
    engine: String,
    seq: u64,
    counters: Vec<(String, String, u64)>,
    gauges: Vec<(String, String, u64)>,
    histograms: Vec<(String, String, HistogramSnapshot)>,
    traces: Vec<ThreadTraceDump>,
}

/// The coordinator-side merge point: absorb [`RankReport`]s and clock
/// samples, read out merged timelines, expositions, and straggler
/// attribution. Single-threaded by design — the dist coordinator owns
/// it and serves renders through a lock.
#[derive(Debug, Default)]
pub struct FleetCollector {
    ranks: BTreeMap<u64, RankState>,
    clocks: BTreeMap<u64, ClockEstimate>,
}

impl FleetCollector {
    /// An empty collector.
    pub fn new() -> FleetCollector {
        FleetCollector::default()
    }

    /// Absorb one rank's report. Stale sequence numbers (telemetry is
    /// lossy and unordered) are dropped; a newer report replaces the
    /// rank's previous snapshot wholesale, because reports carry
    /// cumulative values, not increments.
    pub fn absorb(&mut self, report: RankReport) {
        let state = self.ranks.entry(report.rank).or_default();
        if state.seq > report.seq && !state.engine.is_empty() {
            return;
        }
        state.engine = report.engine;
        state.seq = report.seq;
        state.counters = report.counters;
        state.gauges = report.gauges;
        state.histograms = report.histograms;
        state.traces = report.traces;
    }

    /// Fold one four-timestamp ping/pong exchange with `rank` into its
    /// link's clock estimate.
    pub fn observe_clock(&mut self, rank: u64, t1: u64, t2: u64, t3: u64, t4: u64) {
        self.clocks.entry(rank).or_default().observe(t1, t2, t3, t4);
    }

    /// The current `peer_clock - local_clock` estimate for `rank`
    /// (0 when no exchange completed — e.g. the local rank itself).
    pub fn clock_offset_ns(&self, rank: u64) -> i64 {
        self.clocks.get(&rank).map_or(0, |c| c.offset_ns)
    }

    /// The full per-link estimate, if any samples arrived.
    pub fn clock_estimate(&self, rank: u64) -> Option<ClockEstimate> {
        self.clocks.get(&rank).copied()
    }

    /// Ranks with any absorbed state, ascending.
    pub fn ranks(&self) -> Vec<u64> {
        self.ranks.keys().copied().collect()
    }

    /// The engine name `rank` last reported, if any report arrived.
    pub fn rank_engine(&self, rank: u64) -> Option<&str> {
        self.ranks.get(&rank).map(|s| s.engine.as_str())
    }

    /// Cumulative total of counter family `name` attributable to
    /// `rank`: series from that rank's report whose own `rank` label
    /// (when present) agrees with the report's rank. The label check
    /// matters for the in-process harness, where every rank snapshots
    /// one shared recorder and would otherwise count its peers' series.
    pub fn rank_counter_total(&self, rank: u64, name: &str) -> u64 {
        let Some(state) = self.ranks.get(&rank) else {
            return 0;
        };
        let rank_str = rank.to_string();
        state
            .counters
            .iter()
            .filter(|(n, labels, _)| {
                n == name && label_value(labels, "rank").is_none_or(|v| v == rank_str)
            })
            .map(|(_, _, v)| *v)
            .sum()
    }

    fn corrected_dumps(&self, rank: u64, state: &RankState) -> Vec<ThreadTraceDump> {
        let offset = self.clock_offset_ns(rank);
        state
            .traces
            .iter()
            .map(|dump| {
                let records = dump
                    .records
                    .iter()
                    .map(|rec| TraceRecord {
                        // Shift the rank's timestamps onto the
                        // coordinator clock: local = remote - offset.
                        ts_ns: (rec.ts_ns as i128 - offset as i128).max(0) as u64,
                        ..*rec
                    })
                    .collect();
                ThreadTraceDump {
                    records,
                    ..dump.clone()
                }
            })
            .collect()
    }

    /// Every rank's trace dumps, offset-corrected onto the coordinator
    /// clock and thread names prefixed `r{rank}/` so cross-rank span
    /// pairing reports unambiguous endpoints.
    pub fn merged_dumps(&self) -> Vec<ThreadTraceDump> {
        let mut out = Vec::new();
        for (&rank, state) in &self.ranks {
            for mut dump in self.corrected_dumps(rank, state) {
                dump.thread = format!("r{rank}/{}", dump.thread);
                out.push(dump);
            }
        }
        out
    }

    /// Cross-rank span pairing over the merged dumps: wire spans match
    /// a Begin on the sending rank with the End on the receiving rank.
    pub fn merged_spans(&self) -> Vec<PairedSpan> {
        crate::span::pair_spans(&self.merged_dumps())
    }

    /// Critical-path accounting over the merged, offset-corrected
    /// fleet timeline.
    pub fn merged_critical_path(&self) -> CriticalPathReport {
        critical_path(&self.merged_dumps())
    }

    /// One Perfetto trace-event document for the whole fleet: each
    /// rank a process track (`pid = rank + 1`, Perfetto dislikes pid
    /// 0), each of its threads a thread track, all timestamps shifted
    /// onto the coordinator clock.
    pub fn merged_perfetto_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for (&rank, state) in &self.ranks {
            let name = if state.engine.is_empty() {
                format!("rank{rank}")
            } else {
                format!("rank{rank} ({})", state.engine)
            };
            let dumps = self.corrected_dumps(rank, state);
            perfetto::render_process(&mut out, &mut first, rank as u32 + 1, &name, &dumps);
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition over every rank's metrics, with a
    /// `rank="N"` label spliced into each series that does not already
    /// carry one. Series whose embedded rank label disagrees with the
    /// reporting rank are dropped: the in-process harness shares one
    /// recorder across ranks, so every report carries its peers'
    /// rank-labelled series too, and emitting them twice would corrupt
    /// the exposition. Families keep one `# TYPE` line even when
    /// several ranks contribute series.
    pub fn prometheus_text(&self) -> String {
        fn spliced(labels: &str, rank: u64) -> Option<String> {
            match label_value(labels, "rank") {
                Some(r) => (r == rank.to_string()).then(|| labels.to_string()),
                None if labels.is_empty() => Some(format!("{{rank=\"{rank}\"}}")),
                None => Some(format!("{{rank=\"{rank}\",{}", &labels[1..])),
            }
        }
        let mut out = String::with_capacity(1024);
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_family != name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_family = name.to_string();
            }
        };
        let collect_scalars = |pick: fn(&RankState) -> &Vec<(String, String, u64)>| {
            let mut rows: Vec<(&String, String, u64)> = Vec::new();
            for (&rank, state) in &self.ranks {
                for (name, labels, value) in pick(state) {
                    if let Some(labels) = spliced(labels, rank) {
                        rows.push((name, labels, *value));
                    }
                }
            }
            rows.sort();
            rows
        };
        for (name, labels, value) in collect_scalars(|s| &s.counters) {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name}{labels} {value}");
        }
        for (name, labels, value) in collect_scalars(|s| &s.gauges) {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name}{labels} {value}");
        }
        let mut hists: Vec<(&String, String, &HistogramSnapshot)> = Vec::new();
        for (&rank, state) in &self.ranks {
            for (name, labels, snap) in &state.histograms {
                if let Some(labels) = spliced(labels, rank) {
                    hists.push((name, labels, snap));
                }
            }
        }
        hists.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for (name, labels, snap) in hists {
            type_line(&mut out, name, "histogram");
            let inner = &labels[1..labels.len() - 1];
            let mut cumulative = 0u64;
            for (i, &count) in snap.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{inner},le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{{inner},le=\"+Inf\"}} {}", snap.count);
            let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum);
            let _ = writeln!(out, "{name}_count{labels} {}", snap.count);
        }
        out
    }

    /// Roll `sim_null_wait_ns_total{peer=...}` up across the fleet
    /// into a worst-first "who stalled whom" report. Series carrying a
    /// `rank` label are counted only in the matching rank's report —
    /// the in-process harness shares one recorder, so every report
    /// carries its peers' wait counters too and an unfiltered roll-up
    /// would double-count each link once per rank.
    pub fn straggler_report(&self) -> StragglerReport {
        let mut links: BTreeMap<(u64, String), u64> = BTreeMap::new();
        let mut total = 0u64;
        for (&rank, state) in &self.ranks {
            for (name, labels, value) in &state.counters {
                if name != "sim_null_wait_ns_total" || *value == 0 {
                    continue;
                }
                if label_value(labels, "rank").is_some_and(|r| r != rank.to_string()) {
                    continue;
                }
                let peer = label_value(labels, "peer").unwrap_or("?").to_string();
                total += *value;
                *links.entry((rank, peer)).or_default() += *value;
            }
        }
        let mut entries: Vec<StragglerEntry> = links
            .into_iter()
            .map(|((rank, peer), wait_ns)| StragglerEntry {
                rank,
                peer,
                wait_ns,
                share: 0.0,
            })
            .collect();
        for e in &mut entries {
            e.share = if total == 0 {
                0.0
            } else {
                e.wait_ns as f64 / total as f64
            };
        }
        entries.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.rank.cmp(&b.rank)));
        StragglerReport {
            entries,
            total_wait_ns: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{Phase, SpanKind};
    use crate::{prometheus, ObsConfig};

    fn sample_report(rank: u64, seq: u64) -> RankReport {
        let rec = Recorder::new(&ObsConfig::enabled());
        rec.counter(
            "sim_null_wait_ns_total",
            &[("engine", "dist[p=0/2]"), ("peer", &rank.to_string())],
        )
        .add(1000 * (rank + 1));
        rec.gauge("sim_run_wall_ns", &[]).set(77);
        rec.histogram("sim_node_run_ns", &[("engine", "dist")]).record(42);
        let t = rec.tracer("shard-0");
        t.begin(SpanKind::NodeRun, 5);
        t.end(SpanKind::NodeRun, 5, 1);
        RankReport::capture(rank, "dist[p=x/2]", seq, &rec, usize::MAX)
    }

    #[test]
    fn report_blob_round_trips() {
        let report = sample_report(1, 3);
        assert!(!report.counters.is_empty());
        assert!(!report.histograms.is_empty());
        assert_eq!(report.traces.len(), 1);
        let blob = report.encode();
        let back = RankReport::decode(&blob).expect("own encoding must decode");
        assert_eq!(back, report);
    }

    #[test]
    fn blob_decode_is_total_under_truncation_and_noise() {
        let blob = sample_report(0, 1).encode();
        for len in 0..blob.len() {
            assert!(RankReport::decode(&blob[..len]).is_err(), "prefix {len} accepted");
        }
        // Flipping the version byte must be rejected cleanly.
        let mut bad = blob.clone();
        bad[0] = 0xee;
        assert!(RankReport::decode(&bad).is_err());
        // A blob claiming a huge count must not allocate or panic.
        let mut huge = vec![BLOB_VERSION, 0, 0, 0];
        huge.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0x0f]);
        assert!(RankReport::decode(&huge).is_err());
    }

    #[test]
    fn clock_estimate_prefers_min_rtt_and_cancels_processing_delay() {
        let mut est = ClockEstimate::default();
        // Peer clock runs 500ns ahead; symmetric 100ns path each way,
        // 1000ns of processing delay at the peer.
        est.observe(0, 600, 1600, 1200);
        assert_eq!(est.offset_ns, 500);
        assert_eq!(est.rtt_ns, 200);
        // A slower (more asymmetric) sample must not displace it.
        est.observe(2000, 3500, 4500, 4000);
        assert_eq!(est.rtt_ns, 200);
        assert_eq!(est.offset_ns, 500);
        assert_eq!(est.samples, 2);
        // Negative RTT (torn stamps) is ignored.
        est.observe(100, 90, 5000, 100);
        assert_eq!(est.samples, 2);
    }

    #[test]
    fn merged_timeline_corrects_offsets_and_pairs_wire_spans() {
        let mut fleet = FleetCollector::new();
        // Rank 0 (the coordinator itself, offset 0): opened a wire span
        // at its t=1000.
        let wire_id = 0x42;
        let mk = |rank: u64, recs: Vec<TraceRecord>| RankReport {
            rank,
            engine: "dist".into(),
            seq: 1,
            traces: vec![ThreadTraceDump {
                thread: "net".into(),
                tid: 1,
                pushed: recs.len() as u64,
                records: recs,
            }],
            ..RankReport::default()
        };
        fleet.absorb(mk(
            0,
            vec![TraceRecord {
                ts_ns: 1000,
                kind: SpanKind::WireSpan as u8,
                phase: Phase::Begin as u8,
                a: wire_id,
                b: 0,
                dur_ns: 0,
            }],
        ));
        // Rank 1's clock runs 10_000ns ahead; it closed the span at its
        // t=12_000, i.e. coordinator t=2_000.
        fleet.observe_clock(1, 0, 10_100, 10_100, 200);
        assert_eq!(fleet.clock_offset_ns(1), 10_000);
        fleet.absorb(mk(
            1,
            vec![TraceRecord {
                ts_ns: 12_000,
                kind: SpanKind::WireSpan as u8,
                phase: Phase::End as u8,
                a: wire_id,
                b: 3,
                dur_ns: 0,
            }],
        ));
        let spans = fleet.merged_spans();
        assert_eq!(spans.len(), 1, "wire span must pair across ranks");
        let s = &spans[0];
        assert_eq!(s.kind, SpanKind::WireSpan);
        assert_eq!((s.start_ns, s.end_ns), (1000, 2000));
        assert_eq!(s.begin_thread, "r0/net");
        assert_eq!(s.end_thread, "r1/net");
        // And the merged Perfetto doc carries both rank process tracks.
        let json = fleet.merged_perfetto_json();
        let doc = crate::json::parse(&json).expect("merged trace must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let pids: Vec<f64> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("process_name"))
            .map(|e| e.get("pid").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(pids, vec![1.0, 2.0]);
    }

    #[test]
    fn stale_reports_do_not_overwrite_newer_state() {
        let mut fleet = FleetCollector::new();
        fleet.absorb(sample_report(1, 5));
        let counters_before = fleet.prometheus_text();
        let mut stale = sample_report(1, 2);
        stale.counters.clear();
        fleet.absorb(stale);
        assert_eq!(fleet.prometheus_text(), counters_before);
    }

    #[test]
    fn fleet_exposition_is_rank_labelled_and_lint_clean() {
        let mut fleet = FleetCollector::new();
        fleet.absorb(sample_report(0, 1));
        fleet.absorb(sample_report(1, 1));
        let text = fleet.prometheus_text();
        prometheus::lint(&text).expect("fleet exposition must lint");
        assert!(text.contains("rank=\"0\""), "{text}");
        assert!(text.contains("rank=\"1\""), "{text}");
        // One TYPE line per family even with two ranks contributing.
        assert_eq!(
            text.matches("# TYPE sim_null_wait_ns_total counter").count(),
            1
        );
        assert!(text.contains("{rank=\"1\",engine=\"dist[p=0/2]\",peer=\"1\"}"), "{text}");
    }

    #[test]
    fn exposition_keeps_embedded_rank_labels_and_drops_foreign_series() {
        let rec = Recorder::new(&ObsConfig::enabled());
        rec.counter("sim_events_delivered_total", &[("engine", "dist[p=0/2]"), ("rank", "0")])
            .add(5);
        rec.counter("sim_events_delivered_total", &[("engine", "dist[p=1/2]"), ("rank", "1")])
            .add(6);
        let mut fleet = FleetCollector::new();
        // Shared-recorder harness: both reports carry both series.
        fleet.absorb(RankReport::capture(0, "dist[p=0/2]", 1, &rec, 0));
        fleet.absorb(RankReport::capture(1, "dist[p=1/2]", 1, &rec, 0));
        let text = fleet.prometheus_text();
        prometheus::lint(&text).expect("fleet exposition must lint");
        // Each series appears exactly once, with a single rank label —
        // no splice on top of the embedded label, no cross-rank copy.
        assert_eq!(text.matches("rank=\"0\"").count(), 1, "{text}");
        assert_eq!(text.matches("rank=\"1\"").count(), 1, "{text}");
    }

    #[test]
    fn rank_counter_totals_respect_series_rank_labels() {
        let rec = Recorder::new(&ObsConfig::enabled());
        rec.counter("sim_events_delivered_total", &[("engine", "dist[p=0/2]"), ("rank", "0")])
            .add(10);
        rec.counter("sim_events_delivered_total", &[("engine", "dist[p=1/2]"), ("rank", "1")])
            .add(7);
        rec.counter("sim_runs_total", &[]).add(3);
        let mut fleet = FleetCollector::new();
        // Shared-recorder harness: both ranks snapshot the same registry.
        fleet.absorb(RankReport::capture(0, "dist[p=0/2]", 1, &rec, 0));
        fleet.absorb(RankReport::capture(1, "dist[p=1/2]", 1, &rec, 0));
        assert_eq!(fleet.rank_counter_total(0, "sim_events_delivered_total"), 10);
        assert_eq!(fleet.rank_counter_total(1, "sim_events_delivered_total"), 7);
        // Series without a rank label count toward every absorbed rank.
        assert_eq!(fleet.rank_counter_total(0, "sim_runs_total"), 3);
        assert_eq!(fleet.rank_counter_total(2, "sim_runs_total"), 0);
        assert_eq!(fleet.rank_engine(1), Some("dist[p=1/2]"));
        assert_eq!(fleet.rank_engine(9), None);
    }

    #[test]
    fn straggler_rollup_does_not_double_count_shared_recorder_reports() {
        let rec = Recorder::new(&ObsConfig::enabled());
        rec.counter(
            "sim_null_wait_ns_total",
            &[("engine", "dist[p=0/2]"), ("rank", "0"), ("peer", "2")],
        )
        .add(100);
        rec.counter(
            "sim_null_wait_ns_total",
            &[("engine", "dist[p=1/2]"), ("rank", "1"), ("peer", "0")],
        )
        .add(300);
        let mut fleet = FleetCollector::new();
        // Shared-recorder harness: both reports carry both series.
        fleet.absorb(RankReport::capture(0, "dist[p=0/2]", 1, &rec, 0));
        fleet.absorb(RankReport::capture(1, "dist[p=1/2]", 1, &rec, 0));
        let report = fleet.straggler_report();
        assert_eq!(report.total_wait_ns, 400, "each link counted once");
        assert_eq!(report.entries.len(), 2);
        let top = report.top().expect("waits recorded");
        assert_eq!((top.rank, top.peer.as_str(), top.wait_ns), (1, "0", 300));
    }

    #[test]
    fn straggler_report_names_the_worst_link() {
        let mut fleet = FleetCollector::new();
        fleet.absorb(sample_report(0, 1)); // 1000ns wait on peer "0"
        fleet.absorb(sample_report(1, 1)); // 2000ns wait on peer "1"
        let report = fleet.straggler_report();
        assert_eq!(report.total_wait_ns, 3000);
        let top = report.top().expect("waits were recorded");
        assert_eq!((top.rank, top.peer.as_str()), (1, "1"));
        assert!((top.share - 2.0 / 3.0).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("straggler"), "{text}");
    }
}
