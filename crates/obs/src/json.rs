//! Minimal JSON writing and parsing support.
//!
//! The workspace is offline (vendored shims only, no serde), so the
//! exporters hand-write their JSON and this module supplies the two
//! halves both sides need: a string escaper for writers and a small
//! recursive-descent parser used by the round-trip tests, the `repro
//! obs` self-validation, and CI smoke checks. The parser accepts
//! standard JSON (RFC 8259) minus only `\u` surrogate-pair pedantry —
//! every escape is decoded, lone surrogates come back as U+FFFD.

use std::fmt::Write as _;

/// Escape `s` for inclusion inside a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value we emit).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the run up to the next quote or escape in one
                    // go; multi-byte UTF-8 never collides with either.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"') | Some(b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\r\u{1}ü→";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_structures_and_numbers() {
        let doc = r#"{"a":[1,2.5,-3,1e3],"b":{"c":null,"d":true},"e":false}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-3.0));
        assert_eq!(a[3].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Bool(false)));
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
