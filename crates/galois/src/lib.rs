//! # galois-rt — the optimistic parallelization baseline
//!
//! A from-scratch reimplementation of the Galois execution model the paper
//! compares against (§2.2, §4.4, Algorithm 3): an unordered workset of
//! activities executed speculatively, with lazy per-object ownership
//! acquisition for conflict detection and undo-log rollback for recovery.
//! The DES activity (one node's `SIMULATE` + activity checks) runs exactly
//! the Galois-Java benchmark's way: one **ordered** event queue per node
//! (the `PriorityQueue` the paper's §4.5.1 replaces with per-port deques)
//! and per-node (not per-port) conflict granularity.
//!
//! * [`workset`] — the shared unordered work bag with termination
//!   detection;
//! * [`ownership`] — CAS-word ownership table (conflict detection);
//! * [`undo`] — speculative mutation log + rollback;
//! * [`gnode`] — Galois-style node state;
//! * [`engine::GaloisEngine`] — the parallel baseline engine;
//! * [`seq::GaloisSeqEngine`] — the sequential variant (Table 2's
//!   "Galois (Java)" row).

pub mod engine;
pub mod gnode;
pub mod ownership;
pub mod seq;
pub mod undo;
pub mod workset;

pub use engine::GaloisEngine;
pub use ownership::OwnershipTable;
pub use seq::GaloisSeqEngine;
pub use workset::Workset;
