//! The Galois-style optimistic parallel DES engine (the paper's baseline).
//!
//! Mirrors the Galois-Java benchmark's structure (paper Algorithm 3 +
//! §2.2): worker threads pull active nodes from an unordered [`Workset`]
//! and execute each as a **speculative iteration**:
//!
//! 1. ownership of each touched node is acquired lazily, *in touch order*
//!    (no global ordering — the cautious pattern of Algorithm 2 is exactly
//!    what this baseline cannot do, per §4.4);
//! 2. every mutation is undo-logged;
//! 3. a conflict (another iteration owns a touched node) aborts the
//!    iteration: roll back, release, re-enqueue, count the abort;
//! 4. a completed iteration commits: counters are published, newly active
//!    owned nodes are enqueued, ownership is released.
//!
//! Per-node state uses the heavier ordered queue (`gnode::GNode`) the
//! Galois-Java version used, not the per-port deques of the HJ engine.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use circuit::{Circuit, DelayModel, NodeId, NodeKind, Stimulus};
use crossbeam_utils::Backoff;
use des::engine::{Engine, SimOutput};
use des::event::{Event, NULL_TS};
use des::monitor::Waveform;
use des::stats::SimStats;
use fault::{FaultPlan, RunCtl, RunPolicy, SimError, StallSnapshot, Watchdog, WorkerSnapshot};

use crate::gnode::GNode;
use crate::ownership::{OwnerId, OwnershipTable};
use crate::undo::{UndoLog, UndoOp};
use crate::workset::Workset;

/// The optimistic baseline engine.
#[derive(Debug, Clone)]
pub struct GaloisEngine {
    workers: usize,
    policy: RunPolicy,
}

impl GaloisEngine {
    /// Engine with `workers` worker threads (spawned per run, as the
    /// Galois runtime does for each parallel region).
    ///
    /// Note this engine is *not* reachable through `des::engine::build`:
    /// this crate depends on `des-core` for the [`Engine`] trait, so the
    /// factory cannot construct it without a dependency cycle.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1);
        GaloisEngine {
            workers,
            policy: RunPolicy::new(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Install a fault plan (decision counters reset on every run).
    /// `force_conflicts` makes `touch` spuriously fail, driving the
    /// abort/rollback/retry machinery far harder than organic contention.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.policy = self.policy.with_fault_plan(plan);
        self
    }

    /// Set (or with `None` disable) the no-progress watchdog deadline.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.policy = self.policy.with_watchdog(deadline);
        self
    }
}

impl Engine for GaloisEngine {
    fn name(&self) -> String {
        format!("galois[w={}]", self.workers)
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        let fault = Arc::clone(self.policy.fault());
        fault.reset();
        let ctl = Arc::new(RunCtl::new());
        let sim = GaloisSim::new(circuit, stimulus, delays, Arc::clone(&fault), Arc::clone(&ctl));
        for &input in circuit.inputs() {
            sim.workset.push(input);
        }
        let watchdog = self.policy.watchdog().map(|deadline| {
            let fault = Arc::clone(&fault);
            let workset = Arc::clone(&sim.workset);
            let ownership = Arc::clone(&sim.ownership);
            let engine = self.name();
            let workers = self.workers;
            Watchdog::arm(Arc::clone(&ctl), deadline, move |stalled_for, ticks| {
                let mut notes = Vec::new();
                if fault.is_active() {
                    notes.push(format!("fault injection active: {:?}", fault.injected()));
                }
                StallSnapshot {
                    engine: engine.clone(),
                    stalled_for,
                    progress_ticks: ticks,
                    workers: (0..workers)
                        .map(|id| WorkerSnapshot {
                            id,
                            state: "running".into(),
                            queue_depth: None,
                            ..WorkerSnapshot::default()
                        })
                        .collect(),
                    held_locks: (0..ownership.len())
                        .filter(|&ix| ownership.owner_of(ix) != 0)
                        .collect(),
                    queue_depths: vec![workset.pending()],
                    links: Vec::new(),
                    workset_size: workset.pending(),
                    notes,
                    null_waits: Vec::new(),
                    traces: Vec::new(),
                }
            })
        });
        std::thread::scope(|scope| {
            for w in 0..self.workers {
                let sim = &sim;
                let owner = (w + 1) as OwnerId;
                scope.spawn(move || sim.worker_loop(owner));
            }
        });
        if let Some(wd) = watchdog {
            wd.disarm();
        }
        if let Some(err) = ctl.take_error() {
            // A failed iteration must have rolled back and released its
            // ownership; a node still owned here is a leak.
            let leaked: Vec<usize> = (0..sim.ownership.len())
                .filter(|&ix| sim.ownership.owner_of(ix) != 0)
                .collect();
            if !leaked.is_empty() {
                return Err(SimError::invariant(format!(
                    "nodes {leaked:?} still owned after failed run (original error: {err})"
                )));
            }
            return Err(err);
        }
        Ok(sim.into_output())
    }
}

struct GaloisSim<'a> {
    circuit: &'a Circuit,
    stimulus: &'a Stimulus,
    nodes: Box<[UnsafeCell<GNode>]>,
    // Behind `Arc` so the watchdog's snapshot closure (which must be
    // `'static`) can observe them while the workers run.
    ownership: Arc<OwnershipTable>,
    workset: Arc<Workset>,
    fault: Arc<FaultPlan>,
    ctl: Arc<RunCtl>,
    delivered: AtomicU64,
    processed: AtomicU64,
    nulls: AtomicU64,
    runs: AtomicU64,
    wasted: AtomicU64,
    aborts: AtomicU64,
}

// SAFETY: each `UnsafeCell<GNode>` is only accessed by the iteration that
// owns the node in `ownership` (acquire/release provide the ordering).
unsafe impl Sync for GaloisSim<'_> {}

/// Outcome of one speculative iteration.
enum IterationOutcome {
    Committed,
    Aborted,
}

impl<'a> GaloisSim<'a> {
    fn new(
        circuit: &'a Circuit,
        stimulus: &'a Stimulus,
        delays: &'a DelayModel,
        fault: Arc<FaultPlan>,
        ctl: Arc<RunCtl>,
    ) -> Self {
        assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
        let nodes = circuit
            .nodes()
            .iter()
            .map(|n| {
                UnsafeCell::new(GNode::new(
                    n.kind,
                    match n.kind {
                        NodeKind::Input => delays.input,
                        NodeKind::Output => delays.output,
                        NodeKind::Gate(kind) => delays.of(kind),
                    },
                ))
            })
            .collect();
        GaloisSim {
            circuit,
            stimulus,
            nodes,
            ownership: Arc::new(OwnershipTable::new(circuit.num_nodes())),
            workset: Arc::new(Workset::new()),
            fault,
            ctl,
            delivered: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            nulls: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            wasted: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    fn worker_loop(&self, owner: OwnerId) {
        let backoff = Backoff::new();
        let mut iteration = Iteration::new(owner);
        loop {
            if self.ctl.is_cancelled() {
                return;
            }
            match self.workset.pop() {
                Some(id) => {
                    if self.fault.is_wedged() {
                        // Deliberate wedge: hold the popped item (never
                        // done_one) so the workset stays non-quiescent,
                        // until the watchdog cancels the run.
                        while !self.ctl.is_cancelled() {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        return;
                    }
                    // A panicking iteration (injected or genuine) must not
                    // abort the process: roll back its speculative state,
                    // release its ownership, record the error, cancel.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if self.fault.is_active() {
                            if self.fault.should_panic_spawn() {
                                self.ctl.record_error(SimError::TaskPanicked {
                                    node: Some(id.index()),
                                    payload: "injected task panic".into(),
                                });
                                panic!("fault injection: task panic at node {}", id.index());
                            }
                            if let Some(delay) = self.fault.straggler_delay() {
                                std::thread::sleep(delay);
                            }
                        }
                        iteration.execute(self, id)
                    }));
                    match result {
                        Ok(IterationOutcome::Committed) => self.ctl.tick(),
                        Ok(IterationOutcome::Aborted) => {
                            self.aborts.fetch_add(1, Ordering::Relaxed);
                            // Retry later; back off so the conflicting
                            // iteration can finish (Galois's arbitration).
                            self.workset.push(id);
                            backoff.snooze();
                        }
                        Err(payload) => {
                            iteration.abort(self);
                            self.ctl
                                .record_error(SimError::from_panic(Some(id.index()), payload.as_ref()));
                            self.ctl.cancel();
                            self.workset.done_one();
                            return;
                        }
                    }
                    self.workset.done_one();
                    backoff.reset();
                }
                None => {
                    if self.workset.is_quiescent() {
                        return;
                    }
                    backoff.snooze();
                    if backoff.is_completed() {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Exclusive access to an owned node. Caller must own `ix`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn node_mut(&self, ix: usize) -> &mut GNode {
        &mut *self.nodes[ix].get()
    }

    fn into_output(self) -> SimOutput {
        // Quiescent epilogue: single-threaded again.
        let stats = SimStats {
            events_delivered: self.delivered.load(Ordering::Relaxed),
            events_processed: self.processed.load(Ordering::Relaxed),
            nulls_sent: self.nulls.load(Ordering::Relaxed),
            node_runs: self.runs.load(Ordering::Relaxed),
            wasted_activations: self.wasted.load(Ordering::Relaxed),
            lock_failures: self.ownership.conflicts() + self.fault.injected().conflicts,
            aborts: self.aborts.load(Ordering::Relaxed),
            lock_retries: 0,
            backoff_waits: 0,
            ..SimStats::default()
        };
        let nodes = self.nodes;
        let node_ref = |ix: usize| -> &GNode {
            // SAFETY: quiescent epilogue.
            unsafe { &*nodes[ix].get() }
        };
        for ix in 0..nodes.len() {
            let n = node_ref(ix);
            debug_assert!(n.queue.is_empty(), "node {ix} has undrained events");
            debug_assert!(n.null_sent, "node {ix} never forwarded NULL");
        }
        let node_values = (0..nodes.len())
            .map(|ix| {
                let n = node_ref(ix);
                match n.kind {
                    NodeKind::Input | NodeKind::Output => n.latch.0[0],
                    NodeKind::Gate(kind) => kind.eval(n.latch.values(kind.arity())),
                }
            })
            .collect();
        let waveforms: Vec<Waveform> = self
            .circuit
            .outputs()
            .iter()
            .map(|&o| node_ref(o.index()).waveform.clone())
            .collect();
        SimOutput {
            stats,
            waveforms,
            node_values,
        }
    }
}

/// Per-iteration speculative context, reused across iterations to avoid
/// allocation churn.
struct Iteration {
    owner: OwnerId,
    held: Vec<u32>,
    undo: UndoLog,
    // Iteration-local counters, published only on commit (so aborts do not
    // distort the deterministic totals).
    delivered: u64,
    processed: u64,
    nulls: u64,
}

impl Iteration {
    fn new(owner: OwnerId) -> Self {
        Iteration {
            owner,
            held: Vec::with_capacity(8),
            undo: UndoLog::new(),
            delivered: 0,
            processed: 0,
            nulls: 0,
        }
    }

    /// Acquire ownership of `ix` (idempotent within the iteration).
    fn touch(&mut self, sim: &GaloisSim<'_>, ix: u32) -> bool {
        if self.held.contains(&ix) {
            return true;
        }
        if sim.fault.is_active() && sim.fault.should_force_conflict() {
            // Injected conflict: behave exactly as if another iteration
            // owned the node (abort, roll back, retry).
            return false;
        }
        if sim.ownership.acquire(ix as usize, self.owner) {
            self.held.push(ix);
            true
        } else {
            false
        }
    }

    fn abort(&mut self, sim: &GaloisSim<'_>) -> IterationOutcome {
        // SAFETY: rollback only touches nodes in `held` (we logged only
        // mutations to owned nodes), which we still own.
        self.undo.rollback(|ix| {
            debug_assert!(self.held.contains(&ix), "undo touched an unowned node");
            sim.nodes[ix as usize].get()
        });
        self.release_all(sim);
        self.delivered = 0;
        self.processed = 0;
        self.nulls = 0;
        IterationOutcome::Aborted
    }

    fn release_all(&mut self, sim: &GaloisSim<'_>) {
        for ix in self.held.drain(..) {
            sim.ownership.release(ix as usize, self.owner);
        }
    }

    fn commit(&mut self, sim: &GaloisSim<'_>, candidates: &[u32]) -> IterationOutcome {
        self.undo.commit();
        sim.delivered.fetch_add(self.delivered, Ordering::Relaxed);
        sim.processed.fetch_add(self.processed, Ordering::Relaxed);
        sim.nulls.fetch_add(self.nulls, Ordering::Relaxed);
        self.delivered = 0;
        self.processed = 0;
        self.nulls = 0;
        // Activity check under ownership (exact), then release & publish.
        let mut to_push: Vec<NodeId> = Vec::new();
        for &ix in candidates {
            debug_assert!(self.held.contains(&ix));
            // SAFETY: we own ix.
            let node = unsafe { sim.node_mut(ix as usize) };
            if node.is_active() {
                to_push.push(NodeId(ix));
            }
        }
        self.release_all(sim);
        for id in to_push {
            sim.workset.push(id);
        }
        IterationOutcome::Committed
    }

    /// Execute one speculative iteration on node `id` (Algorithm 3's loop
    /// body: SIMULATE + activity checks, under optimistic conflict
    /// detection).
    fn execute(&mut self, sim: &GaloisSim<'_>, id: NodeId) -> IterationOutcome {
        debug_assert!(self.held.is_empty() && self.undo.is_empty());
        let ix = id.0;
        if !self.touch(sim, ix) {
            return self.abort(sim);
        }
        sim.runs.fetch_add(1, Ordering::Relaxed);

        let kind = {
            // SAFETY: we own ix.
            let node = unsafe { sim.node_mut(ix as usize) };
            if !node.is_active() {
                // Duplicate workset entry: nothing to do.
                sim.wasted.fetch_add(1, Ordering::Relaxed);
                return self.commit(sim, &[]);
            }
            node.kind
        };

        let outcome = match kind {
            NodeKind::Input => self.execute_input(sim, id),
            _ => self.execute_gate_or_output(sim, id),
        };
        match outcome {
            Ok(candidates) => self.commit(sim, &candidates),
            Err(()) => self.abort(sim),
        }
    }

    /// Deliver one payload event speculatively. Fails on conflict.
    fn deliver(
        &mut self,
        sim: &GaloisSim<'_>,
        target: circuit::Target,
        event: Event,
    ) -> Result<(), ()> {
        let tix = target.node.0;
        if !self.touch(sim, tix) {
            return Err(());
        }
        // SAFETY: we own tix.
        let node = unsafe { sim.node_mut(tix as usize) };
        let old_ts = node.last_ts[target.port as usize];
        let key = node.insert(target.port, event);
        self.undo.push(UndoOp::LastTs {
            node: tix,
            port: target.port,
            old: old_ts,
        });
        self.undo.push(UndoOp::Inserted { node: tix, key });
        self.delivered += 1;
        Ok(())
    }

    /// Deliver the NULL message speculatively. Fails on conflict.
    fn deliver_null(
        &mut self,
        sim: &GaloisSim<'_>,
        target: circuit::Target,
    ) -> Result<(), ()> {
        let tix = target.node.0;
        if !self.touch(sim, tix) {
            return Err(());
        }
        // SAFETY: we own tix.
        let node = unsafe { sim.node_mut(tix as usize) };
        let old = node.receive_null(target.port);
        self.undo.push(UndoOp::LastTs {
            node: tix,
            port: target.port,
            old,
        });
        self.nulls += 1;
        Ok(())
    }

    fn execute_input(&mut self, sim: &GaloisSim<'_>, id: NodeId) -> Result<Vec<u32>, ()> {
        let ix = id.0;
        let input_ix = sim
            .circuit
            .inputs()
            .iter()
            .position(|&i| i == id)
            .expect("id is an input node");
        let fanout = &sim.circuit.node(id).fanout;
        let delay = {
            // SAFETY: we own ix.
            unsafe { sim.node_mut(ix as usize) }.delay
        };
        for tv in sim.stimulus.input_events(input_ix) {
            self.delivered += 1;
            self.processed += 1;
            let out = Event::new(tv.time + delay, tv.value);
            for &t in fanout {
                self.deliver(sim, t, out)?;
            }
        }
        for &t in fanout {
            self.deliver_null(sim, t)?;
        }
        {
            // SAFETY: we own ix.
            let node = unsafe { sim.node_mut(ix as usize) };
            self.undo.push(UndoOp::Latch { node: ix, old: node.latch });
            if let Some(last) = sim.stimulus.input_events(input_ix).last() {
                node.latch.set(0, last.value);
            }
            self.undo.push(UndoOp::NullSent { node: ix });
            node.null_sent = true;
        }
        let mut candidates: Vec<u32> = fanout.iter().map(|t| t.node.0).collect();
        candidates.sort_unstable();
        candidates.dedup();
        Ok(candidates)
    }

    fn execute_gate_or_output(
        &mut self,
        sim: &GaloisSim<'_>,
        id: NodeId,
    ) -> Result<Vec<u32>, ()> {
        let ix = id.0;
        let fanout = &sim.circuit.node(id).fanout;
        loop {
            // SAFETY: we own ix; the borrow ends before `deliver` below.
            let popped = {
                let node = unsafe { sim.node_mut(ix as usize) };
                node.pop_ready()
            };
            let Some((key, port, value)) = popped else { break };
            self.undo.push(UndoOp::Popped {
                node: ix,
                key,
                port,
                value,
            });
            self.processed += 1;
            // SAFETY: we own ix; scoped borrow.
            let emitted = {
                let node = unsafe { sim.node_mut(ix as usize) };
                self.undo.push(UndoOp::Latch { node: ix, old: node.latch });
                node.latch.set(port, value);
                match node.kind {
                    NodeKind::Output => {
                        self.undo.push(UndoOp::WaveformLen {
                            node: ix,
                            old_len: node.waveform.len(),
                        });
                        node.waveform.record(Event::new(key.0, value));
                        None
                    }
                    NodeKind::Gate(kind) => {
                        let out = kind.eval(node.latch.values(kind.arity()));
                        Some(Event::new(key.0 + node.delay, out))
                    }
                    NodeKind::Input => unreachable!("inputs use execute_input"),
                }
            };
            if let Some(out) = emitted {
                for &t in fanout {
                    self.deliver(sim, t, out)?;
                }
            }
        }

        // NULL forwarding.
        let owes_null = {
            // SAFETY: we own ix.
            let node = unsafe { sim.node_mut(ix as usize) };
            !node.null_sent && node.clock() == NULL_TS && node.queue.is_empty()
        };
        if owes_null {
            {
                // SAFETY: we own ix.
                let node = unsafe { sim.node_mut(ix as usize) };
                self.undo.push(UndoOp::NullSent { node: ix });
                node.null_sent = true;
            }
            for &t in fanout {
                self.deliver_null(sim, t)?;
            }
        }

        let mut candidates: Vec<u32> = fanout.iter().map(|t| t.node.0).collect();
        candidates.retain(|&c| self.held.contains(&c));
        candidates.sort_unstable();
        candidates.dedup();
        Ok(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::generators::{c17, fanout_tree, full_adder, kogge_stone_adder};
    use des::engine::seq::SeqWorksetEngine;
    use des::validate::{check_against_oracle, check_conservation, check_equivalent};

    fn check(circuit: &Circuit, stimulus: &Stimulus, workers: usize) {
        let delays = DelayModel::standard();
        let seq = SeqWorksetEngine::new().run(circuit, stimulus, &delays);
        let galois = GaloisEngine::new(workers).run(circuit, stimulus, &delays);
        check_conservation(&galois).unwrap();
        check_equivalent(&seq, &galois).unwrap();
        check_against_oracle(circuit, stimulus, &galois).unwrap();
    }

    #[test]
    fn matches_seq_on_c17() {
        let c = c17();
        check(&c, &Stimulus::random_vectors(&c, 10, 3, 2), 2);
    }

    #[test]
    fn matches_seq_on_full_adder_with_ties() {
        let c = full_adder();
        check(&c, &Stimulus::random_vectors(&c, 20, 1, 4), 4);
    }

    #[test]
    fn matches_seq_on_fanout_tree() {
        let c = fanout_tree(3, 3);
        check(&c, &Stimulus::random_vectors(&c, 5, 2, 6), 3);
    }

    #[test]
    fn matches_seq_on_kogge_stone() {
        let c = kogge_stone_adder(8);
        check(&c, &Stimulus::random_vectors(&c, 3, 5, 8), 4);
    }

    #[test]
    fn single_worker_has_no_conflicts() {
        let c = c17();
        let s = Stimulus::random_vectors(&c, 5, 3, 10);
        let out = GaloisEngine::new(1).run(&c, &s, &DelayModel::standard());
        assert_eq!(out.stats.aborts, 0);
        assert_eq!(out.stats.lock_failures, 0);
    }

    #[test]
    fn empty_stimulus_terminates() {
        let c = c17();
        let out = GaloisEngine::new(2).run(&c, &Stimulus::empty(5), &DelayModel::standard());
        assert_eq!(out.stats.events_delivered, 0);
        assert_eq!(out.stats.nulls_sent as usize, c.num_edges());
    }
}
