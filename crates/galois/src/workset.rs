//! The Galois unordered workset (paper §2.2: "the code pattern is like the
//! simple workset based approach").
//!
//! A shared bag of active nodes with a pending counter for termination
//! detection: a worker that pops an item must call [`Workset::done_one`]
//! when the iteration retires (commit or re-push on abort), and the run is
//! over once the bag is empty *and* no iteration is in flight.

use std::sync::atomic::{AtomicUsize, Ordering};

use circuit::NodeId;
use crossbeam_deque::{Injector, Steal};

/// Shared unordered work bag.
pub struct Workset {
    bag: Injector<NodeId>,
    /// Items pushed but not yet retired (includes in-flight iterations).
    pending: AtomicUsize,
}

impl Workset {
    /// An empty workset.
    pub fn new() -> Self {
        Workset {
            bag: Injector::new(),
            pending: AtomicUsize::new(0),
        }
    }

    /// Add an active node (duplicates are allowed, as in Galois).
    pub fn push(&self, id: NodeId) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.bag.push(id);
    }

    /// Take a node to execute, if any. The caller **must** later call
    /// [`Workset::done_one`] exactly once for each successful pop.
    pub fn pop(&self) -> Option<NodeId> {
        loop {
            match self.bag.steal() {
                Steal::Success(id) => return Some(id),
                Steal::Retry => continue,
                Steal::Empty => return None,
            }
        }
    }

    /// Retire one popped item (its iteration committed, or aborted and
    /// re-pushed itself).
    pub fn done_one(&self) {
        let prev = self.pending.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "retired more items than were pushed");
    }

    /// True when no work exists or is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }

    /// Current pending count (racy; diagnostics).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }
}

impl Default for Workset {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Workset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workset")
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_retire_cycle() {
        let ws = Workset::new();
        assert!(ws.is_quiescent());
        ws.push(NodeId(3));
        ws.push(NodeId(4));
        assert!(!ws.is_quiescent());
        let a = ws.pop().unwrap();
        let b = ws.pop().unwrap();
        assert_eq!(
            {
                let mut v = [a.0, b.0];
                v.sort();
                v
            },
            [3, 4]
        );
        assert!(ws.pop().is_none());
        // Still not quiescent: two iterations in flight.
        assert!(!ws.is_quiescent());
        ws.done_one();
        ws.done_one();
        assert!(ws.is_quiescent());
    }

    #[test]
    fn abort_repush_keeps_pending_balanced() {
        let ws = Workset::new();
        ws.push(NodeId(1));
        let id = ws.pop().unwrap();
        // Abort path: re-push then retire the old pop.
        ws.push(id);
        ws.done_one();
        assert!(!ws.is_quiescent());
        let id = ws.pop().unwrap();
        assert_eq!(id, NodeId(1));
        ws.done_one();
        assert!(ws.is_quiescent());
    }
}
