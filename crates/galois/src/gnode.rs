//! Node state as the Galois-Java DES benchmark keeps it: one **ordered**
//! event queue per node (Java's `PriorityQueue`; here an ordered map so
//! speculative removal is possible), per-port receive clocks, latched
//! inputs. The paper's §4.5.1 attributes ~50% of the HJ version's win to
//! replacing exactly this per-node priority queue with per-port deques.

use std::collections::BTreeMap;

use circuit::{Logic, NodeKind, PortIx};
use des::event::{Event, Timestamp, NULL_TS};
use des::monitor::Waveform;
use des::node::Latch;

/// Orders events within a node's queue: time-major, then insertion
/// sequence (keeps per-driver FIFO for equal timestamps).
pub type EventKey = (Timestamp, u64);

/// One node of the Galois simulation.
#[derive(Debug)]
pub struct GNode {
    pub kind: NodeKind,
    pub delay: u64,
    /// The per-node ordered event queue (PriorityQueue equivalent).
    pub queue: BTreeMap<EventKey, (PortIx, Logic)>,
    /// Next insertion sequence number.
    pub next_seq: u64,
    /// Per-port "last received" clocks.
    pub last_ts: Vec<Timestamp>,
    pub latch: Latch,
    pub null_sent: bool,
    /// Circuit outputs: observed events.
    pub waveform: Waveform,
}

impl GNode {
    /// Fresh state for a node of the given kind.
    pub fn new(kind: NodeKind, delay: u64) -> Self {
        GNode {
            kind,
            delay,
            queue: BTreeMap::new(),
            next_seq: 0,
            last_ts: vec![0; kind.num_inputs()],
            latch: Latch::new(),
            null_sent: false,
            waveform: Waveform::new(),
        }
    }

    /// Local clock: minimum last-received over ports ([`NULL_TS`] for
    /// port-less input nodes).
    #[inline]
    pub fn clock(&self) -> Timestamp {
        self.last_ts.iter().copied().min().unwrap_or(NULL_TS)
    }

    /// Insert a delivered event; returns the key (for undo logging).
    pub fn insert(&mut self, port: PortIx, event: Event) -> EventKey {
        debug_assert!(event.time >= self.last_ts[port as usize]);
        debug_assert!(self.last_ts[port as usize] != NULL_TS, "event after NULL");
        let key = (event.time, self.next_seq);
        self.next_seq += 1;
        let prev = self.queue.insert(key, (port, event.value));
        debug_assert!(prev.is_none(), "sequence numbers are unique");
        self.last_ts[port as usize] = event.time;
        key
    }

    /// Receive the NULL message on `port`; returns the previous clock (for
    /// undo logging).
    pub fn receive_null(&mut self, port: PortIx) -> Timestamp {
        let old = self.last_ts[port as usize];
        debug_assert!(old != NULL_TS, "duplicate NULL");
        self.last_ts[port as usize] = NULL_TS;
        old
    }

    /// Pop the next ready event (head of queue if its time ≤ clock).
    pub fn pop_ready(&mut self) -> Option<(EventKey, PortIx, Logic)> {
        let clock = self.clock();
        let (&key, _) = self.queue.first_key_value()?;
        if key.0 <= clock {
            let (port, value) = self.queue.remove(&key).expect("key just seen");
            Some((key, port, value))
        } else {
            None
        }
    }

    /// Is this node active (ready events pending, or NULL forwarding owed)?
    pub fn is_active(&self) -> bool {
        if matches!(self.kind, NodeKind::Input) {
            return !self.null_sent;
        }
        let clock = self.clock();
        match self.queue.first_key_value() {
            Some((&(t, _), _)) => t <= clock,
            None => clock == NULL_TS && !self.null_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::GateKind;

    fn ev(t: Timestamp) -> Event {
        Event::new(t, Logic::One)
    }

    #[test]
    fn insert_orders_by_time_then_seq() {
        let mut n = GNode::new(NodeKind::Gate(GateKind::And), 2);
        n.insert(0, ev(5));
        n.insert(1, ev(3));
        n.insert(0, ev(5));
        // Clock is min(5, 3) = 3 → only the t=3 event is ready.
        assert_eq!(n.clock(), 3);
        let (key, port, _) = n.pop_ready().unwrap();
        assert_eq!((key.0, port), (3, 1));
        assert!(n.pop_ready().is_none());
    }

    #[test]
    fn null_releases_pending_events() {
        let mut n = GNode::new(NodeKind::Gate(GateKind::Or), 2);
        n.insert(0, ev(7));
        assert!(n.pop_ready().is_none()); // port 1 clock is 0
        n.receive_null(1);
        assert_eq!(n.clock(), 7);
        assert!(n.pop_ready().is_some());
        assert_eq!(n.clock(), 7);
    }

    #[test]
    fn activity_transitions() {
        let mut n = GNode::new(NodeKind::Gate(GateKind::Not), 1);
        assert!(!n.is_active()); // nothing received
        n.insert(0, ev(2));
        assert!(n.is_active());
        let _ = n.pop_ready().unwrap();
        assert!(!n.is_active()); // drained but port still open
        n.receive_null(0);
        assert!(n.is_active()); // owes NULL forward
        n.null_sent = true;
        assert!(!n.is_active());
    }

    #[test]
    fn input_nodes_active_until_null_sent() {
        let mut n = GNode::new(NodeKind::Input, 0);
        assert!(n.is_active());
        n.null_sent = true;
        assert!(!n.is_active());
    }
}
