//! Undo logging — the rollback half of the Galois runtime (paper §2.2).
//!
//! Because ownership is acquired lazily *during* an iteration, a conflict
//! can surface after the iteration has already mutated owned state. Every
//! mutation therefore appends an inverse operation; on abort the log is
//! replayed in reverse, restoring exactly the pre-iteration state of all
//! touched nodes.

use circuit::{Logic, PortIx};
use des::event::Timestamp;
use des::node::Latch;

use crate::gnode::{EventKey, GNode};

/// The inverse of one speculative mutation.
#[derive(Debug, Clone, Copy)]
pub enum UndoOp {
    /// An event was inserted into `node`'s queue: remove it.
    Inserted { node: u32, key: EventKey },
    /// An event was popped from `node`'s queue: reinsert it verbatim.
    Popped {
        node: u32,
        key: EventKey,
        port: PortIx,
        value: Logic,
    },
    /// `node`'s per-port clock changed: restore the old value.
    LastTs { node: u32, port: PortIx, old: Timestamp },
    /// `node`'s latch changed: restore it wholesale.
    Latch { node: u32, old: Latch },
    /// `node` set its null_sent flag: clear it.
    NullSent { node: u32 },
    /// `node`'s waveform grew: truncate back.
    WaveformLen { node: u32, old_len: usize },
}

/// An append-only log of inverse operations for one iteration.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
}

impl UndoLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one inverse operation.
    #[inline]
    pub fn push(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commit: the speculation succeeded, drop the log.
    pub fn commit(&mut self) {
        self.ops.clear();
    }

    /// Abort: replay the inverses in reverse order. `node_of` must yield
    /// exclusive access to the touched (still owned!) nodes.
    pub fn rollback(&mut self, mut node_of: impl FnMut(u32) -> *mut GNode) {
        while let Some(op) = self.ops.pop() {
            // SAFETY (for all arms): the caller owns every node the log
            // touches — ownership is only released after rollback.
            match op {
                UndoOp::Inserted { node, key } => {
                    let n = unsafe { &mut *node_of(node) };
                    let removed = n.queue.remove(&key);
                    debug_assert!(removed.is_some(), "inserted event vanished");
                }
                UndoOp::Popped { node, key, port, value } => {
                    let n = unsafe { &mut *node_of(node) };
                    let prev = n.queue.insert(key, (port, value));
                    debug_assert!(prev.is_none(), "popped slot reoccupied");
                }
                UndoOp::LastTs { node, port, old } => {
                    let n = unsafe { &mut *node_of(node) };
                    n.last_ts[port as usize] = old;
                }
                UndoOp::Latch { node, old } => {
                    let n = unsafe { &mut *node_of(node) };
                    n.latch = old;
                }
                UndoOp::NullSent { node } => {
                    let n = unsafe { &mut *node_of(node) };
                    n.null_sent = false;
                }
                UndoOp::WaveformLen { node, old_len } => {
                    let n = unsafe { &mut *node_of(node) };
                    n.waveform.truncate(old_len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::{GateKind, NodeKind};
    use des::event::Event;

    #[test]
    fn rollback_restores_queue_and_clocks() {
        let mut node = GNode::new(NodeKind::Gate(GateKind::And), 2);
        let mut log = UndoLog::new();

        // Speculatively insert two events and receive a NULL.
        let old0 = node.last_ts[0];
        let k0 = node.insert(0, Event::new(4, Logic::One));
        log.push(UndoOp::LastTs { node: 0, port: 0, old: old0 });
        log.push(UndoOp::Inserted { node: 0, key: k0 });

        let old1 = node.receive_null(1);
        log.push(UndoOp::LastTs { node: 0, port: 1, old: old1 });

        // Pop the now-ready event.
        let (key, port, value) = node.pop_ready().unwrap();
        log.push(UndoOp::Popped { node: 0, key, port, value });

        assert!(node.queue.is_empty());
        let ptr: *mut GNode = &mut node;
        log.rollback(|_| ptr);

        assert!(node.queue.is_empty(), "insert was undone after reinsert");
        assert_eq!(node.last_ts, vec![0, 0]);
        assert!(log.is_empty());
    }

    #[test]
    fn rollback_restores_latch_null_and_waveform() {
        let mut node = GNode::new(NodeKind::Output, 0);
        let mut log = UndoLog::new();

        log.push(UndoOp::Latch { node: 0, old: node.latch });
        node.latch.set(0, Logic::One);
        log.push(UndoOp::WaveformLen { node: 0, old_len: node.waveform.len() });
        node.waveform.record(Event::new(3, Logic::One));
        log.push(UndoOp::NullSent { node: 0 });
        node.null_sent = true;

        let ptr: *mut GNode = &mut node;
        log.rollback(|_| ptr);

        assert_eq!(node.latch, Latch::new());
        assert!(node.waveform.is_empty());
        assert!(!node.null_sent);
    }

    #[test]
    fn commit_discards_the_log() {
        let mut log = UndoLog::new();
        log.push(UndoOp::NullSent { node: 0 });
        assert_eq!(log.len(), 1);
        log.commit();
        assert!(log.is_empty());
    }
}
