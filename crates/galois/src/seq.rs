//! The sequential Galois variant — Table 2's "Galois (Java)" row.
//!
//! The paper's sequential baseline is the Galois benchmark compiled
//! without the parallel runtime: same per-node **ordered** event queue
//! (`java.util.PriorityQueue`; our `BTreeMap`-backed [`GNode`]), same
//! workset loop, no speculation. Comparing this against
//! `des-core`'s `SeqWorksetEngine` (per-port `ArrayDeque`s) isolates the
//! queue-representation cost the paper credits with "nearly 50%" of the
//! execution-time reduction (§5).

use std::collections::VecDeque;

use circuit::{Circuit, DelayModel, NodeId, NodeKind, Stimulus};
use des::engine::{Engine, SimOutput};
use fault::SimError;
use des::event::{Event, NULL_TS};
use des::monitor::Waveform;
use des::stats::SimStats;

use crate::gnode::GNode;

/// The sequential per-node-priority-queue engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct GaloisSeqEngine;

impl GaloisSeqEngine {
    pub fn new() -> Self {
        GaloisSeqEngine
    }
}

impl Engine for GaloisSeqEngine {
    fn name(&self) -> String {
        "galois-seq".to_string()
    }

    fn try_run(
        &self,
        circuit: &Circuit,
        stimulus: &Stimulus,
        delays: &DelayModel,
    ) -> Result<SimOutput, SimError> {
        assert_eq!(stimulus.num_inputs(), circuit.inputs().len());
        let mut nodes: Vec<GNode> = circuit
            .nodes()
            .iter()
            .map(|n| {
                GNode::new(
                    n.kind,
                    match n.kind {
                        NodeKind::Input => delays.input,
                        NodeKind::Output => delays.output,
                        NodeKind::Gate(kind) => delays.of(kind),
                    },
                )
            })
            .collect();
        let mut stats = SimStats::default();
        let mut workset: VecDeque<NodeId> = circuit.inputs().iter().copied().collect();
        let mut queued = vec![false; circuit.num_nodes()];
        for &i in circuit.inputs() {
            queued[i.index()] = true;
        }

        while let Some(id) = workset.pop_front() {
            queued[id.index()] = false;
            stats.node_runs += 1;
            let fanout = circuit.node(id).fanout.clone();
            match nodes[id.index()].kind {
                NodeKind::Input => {
                    let input_ix = circuit
                        .inputs()
                        .iter()
                        .position(|&i| i == id)
                        .expect("id is an input node");
                    let delay = nodes[id.index()].delay;
                    for tv in stimulus.input_events(input_ix) {
                        stats.events_delivered += 1;
                        stats.events_processed += 1;
                        let out = Event::new(tv.time + delay, tv.value);
                        for &t in &fanout {
                            stats.events_delivered += 1;
                            nodes[t.node.index()].insert(t.port, out);
                        }
                    }
                    for &t in &fanout {
                        stats.nulls_sent += 1;
                        nodes[t.node.index()].receive_null(t.port);
                    }
                    if let Some(last) = stimulus.input_events(input_ix).last() {
                        nodes[id.index()].latch.set(0, last.value);
                    }
                    nodes[id.index()].null_sent = true;
                }
                _ => {
                    while let Some((key, port, value)) = nodes[id.index()].pop_ready() {
                        stats.events_processed += 1;
                        let emitted = {
                            let node = &mut nodes[id.index()];
                            node.latch.set(port, value);
                            match node.kind {
                                NodeKind::Output => {
                                    node.waveform.record(Event::new(key.0, value));
                                    None
                                }
                                NodeKind::Gate(kind) => {
                                    let out = kind.eval(node.latch.values(kind.arity()));
                                    Some(Event::new(key.0 + node.delay, out))
                                }
                                NodeKind::Input => unreachable!(),
                            }
                        };
                        if let Some(out) = emitted {
                            for &t in &fanout {
                                stats.events_delivered += 1;
                                nodes[t.node.index()].insert(t.port, out);
                            }
                        }
                    }
                    let owes_null = {
                        let node = &nodes[id.index()];
                        !node.null_sent && node.clock() == NULL_TS && node.queue.is_empty()
                    };
                    if owes_null {
                        nodes[id.index()].null_sent = true;
                        for &t in &fanout {
                            stats.nulls_sent += 1;
                            nodes[t.node.index()].receive_null(t.port);
                        }
                    }
                }
            }
            // Activity checks (Algorithm 3 lines 5-9).
            for m in std::iter::once(id).chain(fanout.iter().map(|t| t.node)) {
                let node = &nodes[m.index()];
                let active = !matches!(node.kind, NodeKind::Input) && node.is_active();
                if active && !queued[m.index()] {
                    queued[m.index()] = true;
                    workset.push_back(m);
                }
            }
        }

        for (i, node) in nodes.iter().enumerate() {
            debug_assert!(node.queue.is_empty(), "node {i} has undrained events");
            debug_assert!(node.null_sent, "node {i} never forwarded NULL");
        }
        let node_values = nodes
            .iter()
            .map(|n| match n.kind {
                NodeKind::Input | NodeKind::Output => n.latch.0[0],
                NodeKind::Gate(kind) => kind.eval(n.latch.values(kind.arity())),
            })
            .collect();
        let waveforms: Vec<Waveform> = circuit
            .outputs()
            .iter()
            .map(|&o| std::mem::take(&mut nodes[o.index()].waveform))
            .collect();
        Ok(SimOutput {
            stats,
            waveforms,
            node_values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::generators::{c17, kogge_stone_adder, wallace_multiplier};
    use des::engine::seq::SeqWorksetEngine;
    use des::validate::{check_against_oracle, check_conservation, check_equivalent};

    fn check(circuit: &Circuit, stimulus: &Stimulus) {
        let delays = DelayModel::standard();
        let a = SeqWorksetEngine::new().run(circuit, stimulus, &delays);
        let b = GaloisSeqEngine::new().run(circuit, stimulus, &delays);
        check_conservation(&b).unwrap();
        check_equivalent(&a, &b).unwrap();
        check_against_oracle(circuit, stimulus, &b).unwrap();
    }

    #[test]
    fn matches_deque_engine_on_c17() {
        let c = c17();
        check(&c, &Stimulus::random_vectors(&c, 15, 2, 31));
    }

    #[test]
    fn matches_deque_engine_on_adder() {
        let c = kogge_stone_adder(8);
        check(&c, &Stimulus::random_vectors(&c, 4, 3, 32));
    }

    #[test]
    fn matches_deque_engine_on_multiplier() {
        let c = wallace_multiplier(4);
        check(&c, &Stimulus::random_vectors(&c, 6, 2, 33));
    }
}
