//! Speculative ownership — the conflict-detection half of the Galois
//! runtime (paper §2.2).
//!
//! Galois wraps shared objects in proxies that acquire an exclusive
//! *ownership* on first touch; touching an object owned by another
//! concurrent iteration is a **conflict**, which aborts one of the
//! iterations. We model the ownership table as one CAS word per node.
//! Unlike the HJ engine's port locks, ownership is acquired *lazily in
//! touch order* (no global ordering — the paper's point that the cautious
//! pattern is unavailable), so conflicts and aborts are a normal part of
//! execution.

use std::sync::atomic::{AtomicU32, Ordering};

use crossbeam_utils::CachePadded;

/// Owner id of one iteration (worker id + 1; 0 = free).
pub type OwnerId = u32;

/// The per-node ownership table.
pub struct OwnershipTable {
    owners: Box<[CachePadded<AtomicU32>]>,
    conflicts: CachePadded<AtomicU32>,
}

impl OwnershipTable {
    /// A table for `n` objects, all free.
    pub fn new(n: usize) -> Self {
        OwnershipTable {
            owners: (0..n).map(|_| CachePadded::new(AtomicU32::new(0))).collect(),
            conflicts: CachePadded::new(AtomicU32::new(0)),
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Try to acquire object `ix` for `owner`. Returns true on success or
    /// if `owner` already holds it (re-touch is not a conflict).
    #[inline]
    pub fn acquire(&self, ix: usize, owner: OwnerId) -> bool {
        debug_assert!(owner != 0, "owner ids start at 1");
        match self.owners[ix].compare_exchange(0, owner, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => true,
            Err(current) => {
                if current == owner {
                    true
                } else {
                    self.conflicts.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        }
    }

    /// Release object `ix` (must be held by `owner`).
    #[inline]
    pub fn release(&self, ix: usize, owner: OwnerId) {
        debug_assert_eq!(
            self.owners[ix].load(Ordering::Relaxed),
            owner,
            "releasing an object owned by someone else"
        );
        self.owners[ix].store(0, Ordering::Release);
    }

    /// Racy peek at the current owner (diagnostics).
    pub fn owner_of(&self, ix: usize) -> OwnerId {
        self.owners[ix].load(Ordering::Relaxed)
    }

    /// Total conflicts observed.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed) as u64
    }
}

impl std::fmt::Debug for OwnershipTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OwnershipTable")
            .field("len", &self.len())
            .field("conflicts", &self.conflicts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let t = OwnershipTable::new(4);
        assert!(t.acquire(0, 1));
        assert_eq!(t.owner_of(0), 1);
        assert!(!t.acquire(0, 2));
        assert_eq!(t.conflicts(), 1);
        t.release(0, 1);
        assert!(t.acquire(0, 2));
    }

    #[test]
    fn retouch_is_not_a_conflict() {
        let t = OwnershipTable::new(2);
        assert!(t.acquire(1, 5));
        assert!(t.acquire(1, 5));
        assert_eq!(t.conflicts(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "owned by someone else")]
    fn foreign_release_panics_in_debug() {
        let t = OwnershipTable::new(1);
        assert!(t.acquire(0, 1));
        t.release(0, 2);
    }
}
