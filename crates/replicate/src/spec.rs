//! Job specifications: what a replication sweep runs.
//!
//! A [`JobSpec`] is a seed sweep crossed with a parameter grid: a list
//! of scenario *cells* (each a named [`WorkloadSpec`] — a PHOLD ring or
//! an M/M/c queueing network configuration) and a replication count.
//! Every `(cell, rep)` pair becomes one independent simulation run
//! whose seed is a pure function of `(base_seed, cell, rep)`
//! ([`JobSpec::seed_for`]), so a job's output is bit-reproducible on
//! any machine, any thread count, and any local/remote split.
//!
//! The codec is versioned, varint-packed and **total**: every byte
//! string either decodes to a spec that [`JobSpec::validate`] accepts
//! or returns a [`WireError`] — never a panic. Framing (length + CRC)
//! is supplied by the layers above (the job protocol in [`crate::proto`]
//! and the column store in [`crate::store`]); this module only encodes
//! payload bytes.

use model::phold::PholdConfig;
use model::queueing::MmcSpec;
use net::wire::{get_u8, get_uvarint, put_uvarint, WireError};

/// Spec payload codec version (bumped on any layout change).
pub const SPEC_VERSION: u8 = 1;

/// Upper bounds the decoder enforces so a hostile or corrupt spec
/// cannot make the service allocate or simulate unboundedly.
pub const MAX_NAME_LEN: usize = 128;
/// Maximum scenario cells per job.
pub const MAX_CELLS: usize = 4096;
/// Maximum total runs (`cells × replications`) per job.
pub const MAX_RUNS: u64 = 1 << 24;

const TAG_PHOLD: u8 = 0;
const TAG_MMC: u8 = 1;

/// One simulatable workload configuration.
#[derive(Debug, Clone, Copy)]
pub enum WorkloadSpec {
    /// PHOLD ring (see `model::phold`).
    Phold(PholdConfig),
    /// M/M/c tandem queueing network (see `model::queueing`).
    Mmc(MmcSpec),
}

impl PartialEq for WorkloadSpec {
    fn eq(&self, other: &Self) -> bool {
        // f64 fields compare by bit pattern: the codec round-trips bits
        // exactly, and NaN never validates, so this is a true equality.
        let mut a = Vec::new();
        let mut b = Vec::new();
        self.encode(&mut a);
        other.encode(&mut b);
        a == b
    }
}
impl Eq for WorkloadSpec {}

impl WorkloadSpec {
    /// Short label for tables and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Phold(_) => "phold",
            WorkloadSpec::Mmc(_) => "mmc",
        }
    }

    /// The deterministic per-run metric columns this workload yields,
    /// in the order [`crate::executor::execute_run`] produces them.
    /// Every column is a pure function of the run seed, so cross-run
    /// aggregates over them are bit-reproducible. The executor appends
    /// one extra *non-deterministic* column, [`crate::agg::WALL_COL`].
    pub fn metric_names(&self) -> &'static [&'static str] {
        match self {
            WorkloadSpec::Phold(_) => &["events", "checksum", "remote_sent", "hop_sum"],
            WorkloadSpec::Mmc(_) => {
                &["events", "checksum", "completed", "latency_sum", "wait_sum", "served"]
            }
        }
    }

    /// Append the versionless payload encoding of this workload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WorkloadSpec::Phold(p) => {
                out.push(TAG_PHOLD);
                put_uvarint(out, p.lps as u64);
                put_uvarint(out, p.population as u64);
                put_uvarint(out, p.lookahead);
                put_uvarint(out, p.remote_fraction.to_bits());
                put_uvarint(out, p.mean_delay.to_bits());
            }
            WorkloadSpec::Mmc(m) => {
                out.push(TAG_MMC);
                put_uvarint(out, m.stations as u64);
                put_uvarint(out, m.servers as u64);
                put_uvarint(out, m.mean_interarrival.to_bits());
                put_uvarint(out, m.mean_service.to_bits());
                match m.feedback {
                    None => out.push(0),
                    Some(p) => {
                        out.push(1);
                        put_uvarint(out, p.to_bits());
                    }
                }
            }
        }
    }

    /// Decode one workload from `buf` at `pos`, validating every field.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<WorkloadSpec, WireError> {
        let w = match get_u8(buf, pos)? {
            TAG_PHOLD => WorkloadSpec::Phold(PholdConfig {
                lps: usize_field(buf, pos, MAX_CELLS * 64)?,
                population: usize_field(buf, pos, 1 << 20)?,
                lookahead: get_uvarint(buf, pos)?,
                remote_fraction: f64_field(buf, pos)?,
                mean_delay: f64_field(buf, pos)?,
            }),
            TAG_MMC => WorkloadSpec::Mmc(MmcSpec {
                stations: usize_field(buf, pos, 1 << 16)?,
                servers: usize_field(buf, pos, 1 << 16)?,
                mean_interarrival: f64_field(buf, pos)?,
                mean_service: f64_field(buf, pos)?,
                feedback: match get_u8(buf, pos)? {
                    0 => None,
                    1 => Some(f64_field(buf, pos)?),
                    other => return Err(WireError::BadTag(other)),
                },
            }),
            other => return Err(WireError::BadTag(other)),
        };
        w.validate()?;
        Ok(w)
    }

    /// Reject configurations the workload builders would panic on (or
    /// that make no simulatable sense). Called by the decoder so the
    /// service never executes an invalid remote spec.
    pub fn validate(&self) -> Result<(), WireError> {
        let finite_prob = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        let positive = |m: f64| m.is_finite() && m > 0.0;
        let ok = match self {
            WorkloadSpec::Phold(p) => {
                p.lps >= 1
                    && p.population >= 1
                    && p.lookahead >= 1
                    && finite_prob(p.remote_fraction)
                    && positive(p.mean_delay)
            }
            WorkloadSpec::Mmc(m) => {
                m.stations >= 1
                    && m.servers >= 1
                    && positive(m.mean_interarrival)
                    && positive(m.mean_service)
                    && m.feedback.is_none_or(|p| finite_prob(p) && p < 1.0)
            }
        };
        if ok {
            Ok(())
        } else {
            Err(WireError::BadValue)
        }
    }
}

fn usize_field(buf: &[u8], pos: &mut usize, max: usize) -> Result<usize, WireError> {
    let v = get_uvarint(buf, pos)?;
    if v > max as u64 {
        return Err(WireError::BadValue);
    }
    Ok(v as usize)
}

fn f64_field(buf: &[u8], pos: &mut usize) -> Result<f64, WireError> {
    Ok(f64::from_bits(get_uvarint(buf, pos)?))
}

/// One named point of the parameter grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioCell {
    /// Cell label used in reports and store headers (e.g. `"la=4"`).
    pub name: String,
    /// The workload this cell simulates.
    pub workload: WorkloadSpec,
}

/// A replication job: `cells × replications` independent seeded runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Job label (store header, metrics, reports).
    pub name: String,
    /// Root of the per-run seed derivation.
    pub base_seed: u64,
    /// Replications per cell (the seed sweep).
    pub replications: u32,
    /// Simulated horizon every run stops at (exclusive).
    pub horizon: u64,
    /// The parameter grid.
    pub cells: Vec<ScenarioCell>,
}

impl JobSpec {
    /// `cells × replications`.
    pub fn total_runs(&self) -> u64 {
        self.cells.len() as u64 * self.replications as u64
    }

    /// Deterministic per-run seed: SplitMix64 over `(base_seed, cell,
    /// rep)`. Independent of execution order, thread count, and
    /// local/remote placement — the root of the determinism contract.
    pub fn seed_for(&self, cell: u32, rep: u32) -> u64 {
        let lane = ((cell as u64) << 32) | (rep as u64 + 1);
        splitmix64(self.base_seed ^ splitmix64(lane))
    }

    /// FNV-1a digest of the canonical encoding; stored in the column
    /// store header and echoed by the service so results are never
    /// attributed to the wrong spec.
    pub fn digest(&self) -> u64 {
        crate::agg::fnv1a(&self.encode())
    }

    /// Versioned payload encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(SPEC_VERSION);
        put_uvarint(&mut out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
        put_uvarint(&mut out, self.base_seed);
        put_uvarint(&mut out, self.replications as u64);
        put_uvarint(&mut out, self.horizon);
        put_uvarint(&mut out, self.cells.len() as u64);
        for cell in &self.cells {
            put_uvarint(&mut out, cell.name.len() as u64);
            out.extend_from_slice(cell.name.as_bytes());
            cell.workload.encode(&mut out);
        }
        out
    }

    /// Total decoder: consumes exactly `buf` or errors.
    pub fn decode(buf: &[u8]) -> Result<JobSpec, WireError> {
        let mut pos = 0;
        let spec = Self::decode_at(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(spec)
    }

    /// Decode one spec from `buf` at `pos` (for embedding in frames).
    pub fn decode_at(buf: &[u8], pos: &mut usize) -> Result<JobSpec, WireError> {
        let version = get_u8(buf, pos)?;
        if version != SPEC_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let name = string_field(buf, pos)?;
        let base_seed = get_uvarint(buf, pos)?;
        let replications = get_uvarint(buf, pos)?;
        let horizon = get_uvarint(buf, pos)?;
        let num_cells = get_uvarint(buf, pos)?;
        if num_cells == 0 || num_cells > MAX_CELLS as u64 {
            return Err(WireError::BadValue);
        }
        let mut cells = Vec::with_capacity(num_cells as usize);
        for _ in 0..num_cells {
            cells.push(ScenarioCell {
                name: string_field(buf, pos)?,
                workload: WorkloadSpec::decode(buf, pos)?,
            });
        }
        let spec = JobSpec {
            name,
            base_seed,
            replications: u32::try_from(replications).map_err(|_| WireError::BadValue)?,
            horizon,
            cells,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The invariants every accepted job satisfies.
    pub fn validate(&self) -> Result<(), WireError> {
        if self.name.is_empty()
            || self.name.len() > MAX_NAME_LEN
            || self.replications == 0
            || self.horizon == 0
            || self.cells.is_empty()
            || self.cells.len() > MAX_CELLS
            || self.total_runs() > MAX_RUNS
        {
            return Err(WireError::BadValue);
        }
        for cell in &self.cells {
            if cell.name.is_empty() || cell.name.len() > MAX_NAME_LEN {
                return Err(WireError::BadValue);
            }
            cell.workload.validate()?;
        }
        Ok(())
    }

    /// Convenience constructor: a PHOLD lookahead sweep — one cell per
    /// lookahead value, everything else from `base`.
    pub fn phold_sweep(
        name: impl Into<String>,
        base: PholdConfig,
        lookaheads: &[u64],
        base_seed: u64,
        replications: u32,
        horizon: u64,
    ) -> JobSpec {
        let cells = lookaheads
            .iter()
            .map(|&la| ScenarioCell {
                name: format!("la={la}"),
                workload: WorkloadSpec::Phold(PholdConfig { lookahead: la, ..base }),
            })
            .collect();
        JobSpec { name: name.into(), base_seed, replications, horizon, cells }
    }
}

fn string_field(buf: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = get_uvarint(buf, pos)? as usize;
    if len > MAX_NAME_LEN {
        return Err(WireError::BadValue);
    }
    let end = pos.checked_add(len).ok_or(WireError::Overflow)?;
    if end > buf.len() {
        return Err(WireError::Truncated);
    }
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| WireError::BadValue)?;
    *pos = end;
    Ok(s.to_string())
}

/// SplitMix64 mixing step (same generator family the kernel RNG uses).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_spec() -> JobSpec {
        let mut spec = JobSpec::phold_sweep(
            "sweep",
            PholdConfig { lps: 8, population: 2, lookahead: 4, remote_fraction: 0.5, mean_delay: 10.0 },
            &[2, 4, 8],
            42,
            10,
            300,
        );
        spec.cells.push(ScenarioCell {
            name: "mmc".into(),
            workload: WorkloadSpec::Mmc(MmcSpec {
                stations: 3,
                servers: 2,
                mean_interarrival: 6.0,
                mean_service: 9.0,
                feedback: Some(0.3),
            }),
        });
        spec
    }

    #[test]
    fn spec_round_trips() {
        let spec = sample_spec();
        let bytes = spec.encode();
        let back = JobSpec::decode(&bytes).expect("round trip");
        assert_eq!(back, spec);
        assert_eq!(back.digest(), spec.digest());
        assert_eq!(spec.total_runs(), 40);
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = sample_spec().encode();
        for cut in 0..bytes.len() {
            assert!(
                JobSpec::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_spec().encode();
        bytes.push(0);
        assert!(matches!(JobSpec::decode(&bytes), Err(WireError::TrailingBytes)));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample_spec().encode();
        bytes[0] = SPEC_VERSION + 1;
        assert!(matches!(JobSpec::decode(&bytes), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut zero_reps = sample_spec();
        zero_reps.replications = 0;
        assert!(JobSpec::decode(&zero_reps.encode()).is_err());

        let mut nan = sample_spec();
        nan.cells[0].workload = WorkloadSpec::Phold(PholdConfig {
            remote_fraction: f64::NAN,
            ..PholdConfig::default()
        });
        assert!(JobSpec::decode(&nan.encode()).is_err());

        let mut runaway = sample_spec();
        runaway.replications = u32::MAX;
        assert!(JobSpec::decode(&runaway.encode()).is_err());
    }

    #[test]
    fn decoder_is_total_on_mutated_bytes() {
        // Deterministic byte-flip fuzz: no input may panic.
        let bytes = sample_spec().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                let _ = JobSpec::decode(&m); // must return, never panic
            }
        }
    }

    #[test]
    fn seeds_are_unique_and_order_free() {
        let spec = sample_spec();
        let mut seen = std::collections::HashSet::new();
        for cell in 0..spec.cells.len() as u32 {
            for rep in 0..spec.replications {
                assert!(seen.insert(spec.seed_for(cell, rep)), "seed collision");
            }
        }
        assert_eq!(spec.seed_for(1, 3), spec.seed_for(1, 3));
        assert_ne!(spec.seed_for(0, 1), spec.seed_for(1, 0));
    }
}
