//! The `des-svc` replication service: a long-lived job queue over TCP.
//!
//! One [`Service`] owns a listener, a FIFO job queue, and the local
//! work-stealing pool. Clients connect, `Hello`-fence, and submit
//! [`JobSpec`]s; the scheduler thread executes one job at a time,
//! splitting its replications between the local pool and any attached
//! remote **worker ranks** (`des-svc worker`, the replication analogue
//! of `des-node`). Workers buffer their slice and stream rows back
//! only on success, so a dead or failing worker costs nothing but
//! time: its slice is simply re-run locally — the per-run seeds make
//! the result identical wherever a replication executes.
//!
//! Progress is observable two ways: the `Progress` frame, and the
//! sim-obs Prometheus endpoint (`sim_svc_queue_depth`,
//! `sim_svc_jobs_inflight`, `sim_svc_runs_total`, per-job
//! `sim_svc_job_completed_runs{job="…"}` …) served by
//! `obs::MetricsServer` from the same recorder the runs trace into.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use des::EngineConfig;
use net::wire::WireError;
use obs::Recorder;

use crate::agg::JobAggregate;
use crate::executor::{run_slice, Progress, RunRow};
use crate::proto::{
    proto_digest, read_svc_frame, write_svc_frame, JobState, Role, SvcFrame, ROW_BATCH,
};
use crate::spec::JobSpec;
use crate::store::{RunStoreWriter, StoreError};

/// How long the scheduler waits for a remote slice before re-running
/// it locally.
const ASSIGN_TIMEOUT: Duration = Duration::from_secs(120);

/// Service-side configuration.
#[derive(Clone)]
pub struct SvcConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free port).
    pub listen: String,
    /// Local worker threads.
    pub threads: usize,
    /// When set, every job's rows are streamed to
    /// `<dir>/job-<id>.cols` in the columnar store format.
    pub store_dir: Option<PathBuf>,
    /// Per-run engine configuration (fault policy, watchdog, recorder).
    pub cfg: EngineConfig,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            listen: "127.0.0.1:0".into(),
            threads: 2,
            store_dir: None,
            cfg: EngineConfig::default(),
        }
    }
}

/// Client/worker side errors.
#[derive(Debug)]
pub enum SvcError {
    /// Socket error.
    Io(std::io::Error),
    /// Frame codec violation.
    Wire(WireError),
    /// The server refused the request.
    Rejected(String),
    /// The peer sent a frame that makes no sense here.
    Protocol(String),
    /// Column-store failure.
    Store(StoreError),
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Io(e) => write!(f, "svc io: {e}"),
            SvcError::Wire(e) => write!(f, "svc frame: {e}"),
            SvcError::Rejected(r) => write!(f, "rejected: {r}"),
            SvcError::Protocol(m) => write!(f, "protocol violation: {m}"),
            SvcError::Store(e) => write!(f, "svc store: {e}"),
        }
    }
}

impl std::error::Error for SvcError {}

impl From<std::io::Error> for SvcError {
    fn from(e: std::io::Error) -> Self {
        SvcError::Io(e)
    }
}
impl From<WireError> for SvcError {
    fn from(e: WireError) -> Self {
        SvcError::Wire(e)
    }
}
impl From<StoreError> for SvcError {
    fn from(e: StoreError) -> Self {
        SvcError::Store(e)
    }
}

/// A point-in-time progress snapshot (mirrors `ProgressReport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressInfo {
    /// Lifecycle state.
    pub state: JobState,
    /// Runs completed.
    pub completed: u64,
    /// Total runs.
    pub total: u64,
    /// Jobs queued behind this one.
    pub queued_jobs: u64,
    /// Jobs executing.
    pub inflight_jobs: u64,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    progress: Progress,
    total: u64,
    result: Option<JobAggregate>,
    error: Option<String>,
}

/// Rows of the currently executing job, shared between the scheduler
/// and worker connection threads.
struct ActiveSink {
    writer: Option<RunStoreWriter>,
    agg: JobAggregate,
    seen: std::collections::HashSet<(u32, u32)>,
    corrupt: Option<String>,
}

impl ActiveSink {
    fn push(&mut self, row: &RunRow) {
        if self.corrupt.is_some() {
            return;
        }
        if !self.seen.insert((row.cell, row.rep)) {
            self.corrupt = Some(format!("duplicate row cell={} rep={}", row.cell, row.rep));
            return;
        }
        if row.cell as usize >= self.agg.cells.len()
            || row.values.len() != self.agg.cells[row.cell as usize].hists.len()
        {
            self.corrupt = Some(format!("row outside job shape: cell={}", row.cell));
            return;
        }
        self.agg.record_row(row.cell as usize, &row.values);
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.push_row(row.cell, row.rep, &row.values) {
                self.corrupt = Some(format!("store write failed: {e}"));
            }
        }
    }
}

struct ActiveJob {
    job: u64,
    sink: Mutex<ActiveSink>,
    progress: Progress,
    /// `(rep_start, rep_count, ok)` results of remote assignments.
    done_tx: mpsc::Sender<(u32, u32, bool)>,
    /// worker id → outstanding `(rep_start, rep_count)`.
    assignments: Mutex<HashMap<u64, (u32, u32)>>,
}

struct RemoteWorker {
    id: u64,
    threads: u32,
    stream: TcpStream,
}

struct Shared {
    epoch: u64,
    stop: AtomicBool,
    next_job: AtomicU64,
    next_worker: AtomicU64,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    queue: Mutex<std::collections::VecDeque<u64>>,
    queue_cv: Condvar,
    workers: Mutex<Vec<RemoteWorker>>,
    active: Mutex<Option<Arc<ActiveJob>>>,
    recorder: Recorder,
    config: SvcConfig,
}

impl Shared {
    fn queue_depth(&self) -> u64 {
        self.queue.lock().unwrap().len() as u64
    }

    fn inflight(&self) -> u64 {
        u64::from(self.active.lock().unwrap().is_some())
    }

    fn refresh_gauges(&self) {
        self.recorder.gauge("sim_svc_queue_depth", &[]).set(self.queue_depth());
        self.recorder.gauge("sim_svc_jobs_inflight", &[]).set(self.inflight());
        self.recorder
            .gauge("sim_svc_workers_connected", &[])
            .set(self.workers.lock().unwrap().len() as u64);
    }
}

/// A running replication service.
pub struct Service {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Bind, spawn the accept loop and the scheduler, return.
    pub fn start(config: SvcConfig) -> std::io::Result<Service> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let epoch = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let shared = Arc::new(Shared {
            epoch,
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            next_worker: AtomicU64::new(1),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(std::collections::VecDeque::new()),
            queue_cv: Condvar::new(),
            workers: Mutex::new(Vec::new()),
            active: Mutex::new(None),
            recorder: config.cfg.recorder(),
            config,
        });
        shared.refresh_gauges();

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::Builder::new().name("svc-accept".into()).spawn(
                move || accept_loop(listener, &shared),
            )?);
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::Builder::new().name("svc-sched".into()).spawn(
                move || scheduler_loop(&shared),
            )?);
        }
        Ok(Service { addr, shared, threads })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder runs and service metrics publish into (hand it to
    /// `obs::MetricsServer::serve` for a live endpoint).
    pub fn recorder(&self) -> Recorder {
        self.shared.recorder.clone()
    }

    /// Block until some client sends `Shutdown`, then tear down. This
    /// is the `des-svc serve` main loop.
    pub fn join_until_stopped(self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            while !self.shared.stop.load(Ordering::SeqCst) {
                queue = self
                    .shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap()
                    .0;
            }
        }
        self.stop();
    }

    /// Stop accepting, finish the in-flight job, join every thread.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        // Tell attached workers to exit.
        for w in self.shared.workers.lock().unwrap().iter() {
            let mut stream = &w.stream;
            let _ = stream.write_all(&crate::proto::encode_svc_frame(&SvcFrame::Shutdown));
            let _ = w.stream.shutdown(std::net::Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        let conn = listener.accept();
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("svc-conn".into())
            .spawn(move || handle_conn(stream, &shared));
    }
}

fn reject(stream: &mut impl Write, reason: &str) {
    let _ = write_svc_frame(stream, &SvcFrame::Reject { reason: reason.into() });
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    // Fence: first frame must be a Hello with the right digest.
    let role = match read_svc_frame(&mut reader) {
        Ok(Some(SvcFrame::Hello { role, threads, digest })) => {
            if digest != proto_digest() {
                reject(&mut writer, "protocol digest mismatch");
                return;
            }
            let _ = write_svc_frame(&mut writer, &SvcFrame::HelloOk { epoch: shared.epoch });
            (role, threads)
        }
        _ => {
            reject(&mut writer, "expected Hello");
            return;
        }
    };
    match role {
        (Role::Client, _) => client_loop(reader, writer, shared),
        (Role::Worker, threads) => worker_loop(reader, writer, threads, shared),
    }
}

fn client_loop(mut reader: BufReader<TcpStream>, mut writer: TcpStream, shared: &Arc<Shared>) {
    while let Ok(Some(frame)) = read_svc_frame(&mut reader) {
        match frame {
            SvcFrame::Submit { spec } => {
                if shared.stop.load(Ordering::SeqCst) {
                    reject(&mut writer, "service is shutting down");
                    continue;
                }
                let job = shared.next_job.fetch_add(1, Ordering::SeqCst);
                let total = spec.total_runs();
                shared.jobs.lock().unwrap().insert(
                    job,
                    JobEntry {
                        spec,
                        state: JobState::Queued,
                        progress: Progress::default(),
                        total,
                        result: None,
                        error: None,
                    },
                );
                shared.queue.lock().unwrap().push_back(job);
                // notify_all: the scheduler is not the only waiter —
                // `join_until_stopped` parks on this condvar too.
                shared.queue_cv.notify_all();
                shared.recorder.counter("sim_svc_jobs_submitted_total", &[]).inc();
                shared.refresh_gauges();
                let _ = write_svc_frame(&mut writer, &SvcFrame::Submitted { job });
            }
            SvcFrame::Progress { job } => {
                let jobs = shared.jobs.lock().unwrap();
                match jobs.get(&job) {
                    None => reject(&mut writer, &format!("job {job} unknown")),
                    Some(entry) => {
                        let report = SvcFrame::ProgressReport {
                            job,
                            state: entry.state,
                            completed: entry.progress.completed(),
                            total: entry.total,
                            queued_jobs: shared.queue_depth(),
                            inflight_jobs: shared.inflight(),
                        };
                        drop(jobs);
                        let _ = write_svc_frame(&mut writer, &report);
                    }
                }
            }
            SvcFrame::Fetch { job } => {
                let jobs = shared.jobs.lock().unwrap();
                match jobs.get(&job) {
                    None => reject(&mut writer, &format!("job {job} unknown")),
                    Some(JobEntry { state: JobState::Failed, error, .. }) => {
                        let reason =
                            format!("job {job} failed: {}", error.as_deref().unwrap_or("?"));
                        drop(jobs);
                        reject(&mut writer, &reason);
                    }
                    Some(JobEntry { result: Some(agg), .. }) => {
                        let frame = SvcFrame::Results { job, agg: agg.clone() };
                        drop(jobs);
                        let _ = write_svc_frame(&mut writer, &frame);
                    }
                    Some(_) => reject(&mut writer, &format!("job {job} not done yet")),
                }
            }
            SvcFrame::Shutdown => {
                shared.stop.store(true, Ordering::SeqCst);
                shared.queue_cv.notify_all();
                return;
            }
            _ => {
                reject(&mut writer, "unexpected frame for a client connection");
                return;
            }
        }
    }
}

fn worker_loop(
    mut reader: BufReader<TcpStream>,
    writer: TcpStream,
    threads: u32,
    shared: &Arc<Shared>,
) {
    let id = shared.next_worker.fetch_add(1, Ordering::SeqCst);
    shared
        .workers
        .lock()
        .unwrap()
        .push(RemoteWorker { id, threads: threads.max(1), stream: writer });
    shared.refresh_gauges();

    loop {
        match read_svc_frame(&mut reader) {
            Ok(Some(SvcFrame::RowBatch { job, rows })) => {
                let active = shared.active.lock().unwrap().clone();
                if let Some(active) = active.filter(|a| a.job == job) {
                    let mut sink = active.sink.lock().unwrap();
                    for row in &rows {
                        sink.push(row);
                    }
                    drop(sink);
                    active.progress.add(rows.len() as u64);
                    shared.recorder.counter("sim_svc_runs_total", &[]).add(rows.len() as u64);
                }
            }
            Ok(Some(SvcFrame::AssignDone { job, rep_start, rep_count, ok })) => {
                let active = shared.active.lock().unwrap().clone();
                if let Some(active) = active.filter(|a| a.job == job) {
                    active.assignments.lock().unwrap().remove(&id);
                    let _ = active.done_tx.send((rep_start, rep_count, ok));
                }
            }
            Ok(Some(_)) | Ok(None) | Err(_) => break,
        }
    }

    // Deregister; fail any outstanding assignment so the scheduler
    // re-runs the slice locally instead of waiting for the timeout.
    shared.workers.lock().unwrap().retain(|w| w.id != id);
    shared.refresh_gauges();
    let active = shared.active.lock().unwrap().clone();
    if let Some(active) = active {
        if let Some((start, count)) = active.assignments.lock().unwrap().remove(&id) {
            let _ = active.done_tx.send((start, count, false));
        }
    }
}

fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                // Timed wait: a missed wakeup must degrade to a 200ms
                // stutter, never a wedged queue.
                queue = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap()
                    .0;
            }
        };
        run_job(shared, job);
        shared.refresh_gauges();
    }
}

fn run_job(shared: &Arc<Shared>, job: u64) {
    let (spec, progress) = {
        let mut jobs = shared.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(&job) else { return };
        entry.state = JobState::Running;
        (entry.spec.clone(), entry.progress.clone())
    };
    shared.refresh_gauges();
    let job_label = job.to_string();
    let labels: &[(&str, &str)] = &[("job", &job_label)];
    shared.recorder.gauge("sim_svc_job_total_runs", labels).set(spec.total_runs());
    let progress_gauge = shared.recorder.gauge("sim_svc_job_completed_runs", labels);
    let runs_counter = shared.recorder.counter("sim_svc_runs_total", &[]);

    // Plan the split: local pool + one slice per connected worker,
    // sized by thread counts.
    let local_threads = shared.config.threads.max(1);
    let reps = spec.replications;
    let assignments: Vec<(u64, u32, u32)> = {
        let workers = shared.workers.lock().unwrap();
        let total_threads: u32 =
            local_threads as u32 + workers.iter().map(|w| w.threads).sum::<u32>();
        let mut next = reps; // remote slices come off the top
        let mut out = Vec::new();
        for w in workers.iter() {
            let share = (reps as u64 * w.threads as u64 / total_threads as u64) as u32;
            let share = share.min(next);
            if share == 0 {
                continue;
            }
            next -= share;
            out.push((w.id, next, share));
        }
        out
    };
    let local_reps = reps - assignments.iter().map(|&(_, _, n)| n).sum::<u32>();

    let (done_tx, done_rx) = mpsc::channel();
    let writer = shared.config.store_dir.as_ref().and_then(|dir| {
        RunStoreWriter::create(dir.join(format!("job-{job}.cols")), &spec).ok()
    });
    let active = Arc::new(ActiveJob {
        job,
        sink: Mutex::new(ActiveSink {
            writer,
            agg: JobAggregate::for_spec(&spec),
            seen: std::collections::HashSet::new(),
            corrupt: None,
        }),
        progress: progress.clone(),
        done_tx,
        assignments: Mutex::new(HashMap::new()),
    });
    *shared.active.lock().unwrap() = Some(Arc::clone(&active));
    shared.refresh_gauges();

    // Dispatch remote slices.
    let mut outstanding = 0usize;
    for &(worker_id, rep_start, rep_count) in &assignments {
        let workers = shared.workers.lock().unwrap();
        let sent = workers.iter().find(|w| w.id == worker_id).is_some_and(|w| {
            let mut stream = &w.stream;
            stream
                .write_all(&crate::proto::encode_svc_frame(&SvcFrame::Assign {
                    job,
                    rep_start,
                    rep_count,
                    spec: spec.clone(),
                }))
                .is_ok()
        });
        drop(workers);
        if sent {
            active.assignments.lock().unwrap().insert(worker_id, (rep_start, rep_count));
            outstanding += 1;
        } else {
            // Worker vanished before dispatch: run its slice locally.
            let _ = active.done_tx.send((rep_start, rep_count, false));
            outstanding += 1;
        }
    }

    // Execute the local slice on this thread.
    let run_local = |range: std::ops::Range<u32>| -> Result<(), des::SimError> {
        run_slice(&spec, range, local_threads, &shared.config.cfg, &progress, |row| {
            active.sink.lock().unwrap().push(&row);
            progress_gauge.set(progress.completed());
            runs_counter.inc();
        })
    };
    let mut failure: Option<String> = run_local(0..local_reps).err().map(|e| e.to_string());

    // Collect remote outcomes; re-run failed slices locally.
    for _ in 0..outstanding {
        match done_rx.recv_timeout(ASSIGN_TIMEOUT) {
            Ok((_, _, true)) => {}
            Ok((start, count, false)) => {
                if failure.is_none() {
                    if let Err(e) = run_local(start..start + count) {
                        failure = Some(e.to_string());
                    }
                }
            }
            Err(_) => {
                failure.get_or_insert_with(|| "remote slice timed out".to_string());
                break;
            }
        }
    }
    progress_gauge.set(progress.completed());

    // Finalize: seal the store, publish the aggregate.
    *shared.active.lock().unwrap() = None;
    let mut sink = Arc::try_unwrap(active)
        .map(|a| a.sink.into_inner().unwrap())
        .unwrap_or_else(|arc| {
            // A conn thread still holds the Arc briefly; take the sink
            // contents under the lock instead.
            let mut guard = arc.sink.lock().unwrap();
            ActiveSink {
                writer: guard.writer.take(),
                agg: std::mem::replace(&mut guard.agg, JobAggregate::for_spec(&spec)),
                seen: std::mem::take(&mut guard.seen),
                corrupt: guard.corrupt.take(),
            }
        });
    if failure.is_none() {
        failure = sink.corrupt.take();
    }
    if failure.is_none() && sink.agg.total_runs != spec.total_runs() {
        failure = Some(format!(
            "incomplete job: {}/{} runs",
            sink.agg.total_runs,
            spec.total_runs()
        ));
    }
    if failure.is_none() {
        if let Some(w) = sink.writer.take() {
            match w.finish() {
                Ok(sealed) => debug_assert_eq!(sealed.digest(), sink.agg.digest()),
                Err(e) => failure = Some(format!("store seal failed: {e}")),
            }
        }
    }

    let mut jobs = shared.jobs.lock().unwrap();
    if let Some(entry) = jobs.get_mut(&job) {
        match failure {
            None => {
                entry.state = JobState::Done;
                entry.result = Some(sink.agg);
                shared.recorder.counter("sim_svc_jobs_completed_total", &[]).inc();
            }
            Some(reason) => {
                entry.state = JobState::Failed;
                entry.error = Some(reason);
                shared.recorder.counter("sim_svc_jobs_failed_total", &[]).inc();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client and worker sides.

/// A fenced client connection.
pub struct SvcClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl SvcClient {
    /// Dial, `Hello`-fence, and return a ready client.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SvcClient, SvcError> {
        let writer = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut w = &writer;
        w.write_all(&crate::proto::encode_svc_frame(&SvcFrame::Hello {
            role: Role::Client,
            threads: 0,
            digest: proto_digest(),
        }))?;
        match read_svc_frame(&mut reader)? {
            Some(SvcFrame::HelloOk { .. }) => Ok(SvcClient { reader, writer }),
            Some(SvcFrame::Reject { reason }) => Err(SvcError::Rejected(reason)),
            other => Err(SvcError::Protocol(format!("expected HelloOk, got {other:?}"))),
        }
    }

    fn roundtrip(&mut self, frame: &SvcFrame) -> Result<SvcFrame, SvcError> {
        write_svc_frame(&mut self.writer, frame)?;
        match read_svc_frame(&mut self.reader)? {
            Some(SvcFrame::Reject { reason }) => Err(SvcError::Rejected(reason)),
            Some(reply) => Ok(reply),
            None => Err(SvcError::Protocol("server hung up".into())),
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, SvcError> {
        match self.roundtrip(&SvcFrame::Submit { spec: clone_valid(spec)? })? {
            SvcFrame::Submitted { job } => Ok(job),
            other => Err(SvcError::Protocol(format!("expected Submitted, got {other:?}"))),
        }
    }

    /// Poll a job's progress.
    pub fn progress(&mut self, job: u64) -> Result<ProgressInfo, SvcError> {
        match self.roundtrip(&SvcFrame::Progress { job })? {
            SvcFrame::ProgressReport { state, completed, total, queued_jobs, inflight_jobs, .. } => {
                Ok(ProgressInfo { state, completed, total, queued_jobs, inflight_jobs })
            }
            other => Err(SvcError::Protocol(format!("expected ProgressReport, got {other:?}"))),
        }
    }

    /// Fetch the aggregate of a finished job.
    pub fn fetch(&mut self, job: u64) -> Result<JobAggregate, SvcError> {
        match self.roundtrip(&SvcFrame::Fetch { job })? {
            SvcFrame::Results { agg, .. } => Ok(agg),
            other => Err(SvcError::Protocol(format!("expected Results, got {other:?}"))),
        }
    }

    /// Poll until the job leaves the queue/running states (or `timeout`).
    pub fn wait_done(&mut self, job: u64, timeout: Duration) -> Result<ProgressInfo, SvcError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let info = self.progress(job)?;
            match info.state {
                JobState::Done | JobState::Failed => return Ok(info),
                _ if std::time::Instant::now() >= deadline => {
                    return Err(SvcError::Protocol(format!(
                        "timed out waiting for job {job}: {}/{} runs",
                        info.completed, info.total
                    )))
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Ask the service to stop after the in-flight job.
    pub fn shutdown(&mut self) -> Result<(), SvcError> {
        write_svc_frame(&mut self.writer, &SvcFrame::Shutdown)?;
        Ok(())
    }
}

fn clone_valid(spec: &JobSpec) -> Result<JobSpec, SvcError> {
    spec.validate().map_err(SvcError::Wire)?;
    Ok(spec.clone())
}

/// Handle to an attached worker rank.
pub struct WorkerHandle {
    thread: std::thread::JoinHandle<()>,
}

impl WorkerHandle {
    /// Block until the server releases the worker (Shutdown or hangup).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Dial `addr` as a worker rank with `threads` local threads and serve
/// `Assign` slices until the server hangs up. Rows of a slice are
/// buffered and streamed back only when the slice succeeds, so a
/// failed slice can be re-run elsewhere without duplicate rows.
pub fn worker_attach(
    addr: impl ToSocketAddrs,
    threads: usize,
    cfg: EngineConfig,
) -> Result<WorkerHandle, SvcError> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut w = &stream;
    w.write_all(&crate::proto::encode_svc_frame(&SvcFrame::Hello {
        role: Role::Worker,
        threads: threads as u32,
        digest: proto_digest(),
    }))?;
    match read_svc_frame(&mut reader)? {
        Some(SvcFrame::HelloOk { .. }) => {}
        Some(SvcFrame::Reject { reason }) => return Err(SvcError::Rejected(reason)),
        other => return Err(SvcError::Protocol(format!("expected HelloOk, got {other:?}"))),
    }
    let thread = std::thread::Builder::new()
        .name("svc-worker".into())
        .spawn(move || worker_serve(reader, stream, threads, &cfg))
        .map_err(SvcError::Io)?;
    Ok(WorkerHandle { thread })
}

fn worker_serve(
    mut reader: BufReader<TcpStream>,
    stream: TcpStream,
    threads: usize,
    cfg: &EngineConfig,
) {
    while let Ok(Some(frame)) = read_svc_frame(&mut reader) {
        match frame {
            SvcFrame::Assign { job, rep_start, rep_count, spec } => {
                let progress = Progress::default();
                let mut rows: Vec<RunRow> = Vec::new();
                let result = run_slice(
                    &spec,
                    rep_start..rep_start + rep_count,
                    threads.max(1),
                    cfg,
                    &progress,
                    |row| rows.push(row),
                );
                let mut out = BufWriter::new(&stream);
                let ok = result.is_ok();
                if ok {
                    for batch in rows.chunks(ROW_BATCH) {
                        if write_svc_frame(&mut out, &SvcFrame::RowBatch {
                            job,
                            rows: batch.to_vec(),
                        })
                        .is_err()
                        {
                            return;
                        }
                    }
                }
                if write_svc_frame(&mut out, &SvcFrame::AssignDone {
                    job,
                    rep_start,
                    rep_count,
                    ok,
                })
                .is_err()
                {
                    return;
                }
            }
            SvcFrame::Shutdown => return,
            _ => return, // protocol violation: hang up
        }
    }
}
