//! `des-svc`: the replication service CLI.
//!
//! One subcommand per protocol verb:
//!
//! ```text
//! des-svc serve --listen 127.0.0.1:7200 --threads 4 \
//!         --metrics-addr 127.0.0.1:9101 --store /tmp/runs
//! des-svc submit --to 127.0.0.1:7200 --reps 64 --sweep-lookahead 2,4,8
//! des-svc progress --to 127.0.0.1:7200 --job 1
//! des-svc fetch --to 127.0.0.1:7200 --job 1
//! des-svc worker --to 127.0.0.1:7200 --threads 4
//! des-svc shutdown --to 127.0.0.1:7200
//! ```
//!
//! `submit` prints `job=<id>` on success; `progress` prints one
//! machine-greppable line (`job=1 state=done completed=192 total=192
//! queued=0 inflight=0`); `fetch` prints the per-cell percentile table
//! plus the aggregate digest, so two fetches of reruns of the same spec
//! can be diffed byte-for-byte (DESIGN.md §14 determinism contract).
//!
//! The Prometheus endpoint (when `--metrics-addr` is given) is
//! plaintext HTTP with no auth — loopback or trusted networks only.

use std::process::ExitCode;
use std::time::Duration;

use des::{EngineConfig, ObsConfig, Recorder};
use model::phold::PholdConfig;
use obs::prometheus::MetricsServer;
use replicate::service::{worker_attach, Service, SvcClient, SvcConfig};
use replicate::spec::JobSpec;

fn usage() -> String {
    "usage: des-svc <serve|submit|progress|fetch|worker|shutdown> [options]\n\
     serve    --listen HOST:PORT [--threads N] [--metrics-addr HOST:PORT] [--store DIR]\n\
     submit   --to HOST:PORT [--name S] [--reps N] [--horizon T] [--seed S]\n\
              [--lps N] [--population N] [--remote-fraction F] [--mean-delay F]\n\
              [--sweep-lookahead A,B,C | --lookahead L]\n\
     progress --to HOST:PORT --job ID\n\
     fetch    --to HOST:PORT --job ID\n\
     worker   --to HOST:PORT [--threads N] [--rank R] [--metrics-addr HOST:PORT]\n\
     shutdown --to HOST:PORT"
        .to_string()
}

struct Flags {
    flags: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: impl Iterator<Item = String>) -> Result<Flags, String> {
        let mut flags = Vec::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}'\n{}", usage()));
            };
            let value = args.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value));
        }
        Ok(Flags { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}\n{}", usage()))
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for (k, _) in &self.flags {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown flag '--{k}'\n{}", usage()));
            }
        }
        Ok(())
    }
}

fn spec_from_flags(flags: &Flags) -> Result<JobSpec, String> {
    let base = PholdConfig {
        lps: flags.parsed("lps", 8)?,
        population: flags.parsed("population", 2)?,
        lookahead: flags.parsed("lookahead", 4)?,
        remote_fraction: flags.parsed("remote-fraction", 0.5)?,
        mean_delay: flags.parsed("mean-delay", 10.0)?,
    };
    let lookaheads: Vec<u64> = match flags.get("sweep-lookahead") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().map_err(|e| format!("--sweep-lookahead: {e}")))
            .collect::<Result<_, _>>()?,
        None => vec![base.lookahead],
    };
    let spec = JobSpec::phold_sweep(
        flags.get("name").unwrap_or("phold-sweep"),
        base,
        &lookaheads,
        flags.parsed("seed", 42u64)?,
        flags.parsed("reps", 16u32)?,
        flags.parsed("horizon", 400u64)?,
    );
    spec.validate().map_err(|e| format!("invalid spec: {e}"))?;
    Ok(spec)
}

fn connect(flags: &Flags) -> Result<SvcClient, String> {
    let to = flags.required("to")?;
    SvcClient::connect(to).map_err(|e| format!("connect {to}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) => c,
        None => {
            eprintln!("{}", usage());
            return Ok(ExitCode::FAILURE);
        }
    };
    if cmd == "--help" || cmd == "-h" {
        println!("{}", usage());
        return Ok(ExitCode::SUCCESS);
    }
    let flags = Flags::parse(args)?;
    match cmd.as_str() {
        "serve" => {
            flags.reject_unknown(&["listen", "threads", "metrics-addr", "store"])?;
            let recorder = Recorder::new(&ObsConfig::enabled());
            let config = SvcConfig {
                listen: flags.required("listen")?.to_string(),
                threads: flags.parsed("threads", 2usize)?.max(1),
                store_dir: flags.get("store").map(Into::into),
                cfg: EngineConfig::default().with_recorder(recorder.clone()),
            };
            if let Some(dir) = &config.store_dir {
                std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
            }
            let service =
                Service::start(config).map_err(|e| format!("start service: {e}"))?;
            // Metrics are an observer: a bind failure degrades to a
            // warning, never aborts the service.
            let _metrics = match flags.get("metrics-addr") {
                Some(addr) => match MetricsServer::serve(addr, recorder) {
                    Ok(server) => {
                        eprintln!(
                            "des-svc: serving Prometheus metrics on http://{}/metrics (plaintext, no auth)",
                            server.local_addr()
                        );
                        Some(server)
                    }
                    Err(e) => {
                        eprintln!(
                            "des-svc: warning: metrics server on {addr} failed ({e}); \
                             continuing without metrics"
                        );
                        None
                    }
                },
                None => None,
            };
            eprintln!("des-svc: listening on {}", service.addr());
            // serve runs until a client sends Shutdown.
            service.join_until_stopped();
            eprintln!("des-svc: stopped");
            Ok(ExitCode::SUCCESS)
        }
        "submit" => {
            flags.reject_unknown(&[
                "to",
                "name",
                "reps",
                "horizon",
                "seed",
                "lps",
                "population",
                "lookahead",
                "remote-fraction",
                "mean-delay",
                "sweep-lookahead",
            ])?;
            let spec = spec_from_flags(&flags)?;
            let mut client = connect(&flags)?;
            let job = client.submit(&spec).map_err(|e| format!("submit: {e}"))?;
            println!("job={job} total={}", spec.total_runs());
            Ok(ExitCode::SUCCESS)
        }
        "progress" => {
            flags.reject_unknown(&["to", "job"])?;
            let job: u64 = flags.required("job")?.parse().map_err(|e| format!("--job: {e}"))?;
            let mut client = connect(&flags)?;
            let info = client.progress(job).map_err(|e| format!("progress: {e}"))?;
            println!(
                "job={job} state={} completed={} total={} queued={} inflight={}",
                info.state.label(),
                info.completed,
                info.total,
                info.queued_jobs,
                info.inflight_jobs,
            );
            Ok(ExitCode::SUCCESS)
        }
        "fetch" => {
            flags.reject_unknown(&["to", "job"])?;
            let job: u64 = flags.required("job")?.parse().map_err(|e| format!("--job: {e}"))?;
            let mut client = connect(&flags)?;
            let agg = client.fetch(job).map_err(|e| format!("fetch: {e}"))?;
            println!("job={job} runs={} digest={:#018x}", agg.total_runs, agg.digest());
            println!(
                "{:<12} {:<14} {:>8} {:>14} {:>12} {:>12} {:>12}",
                "cell", "column", "count", "mean", "p50", "p95", "p99"
            );
            for (cell, col, count, mean, p50, p95, p99) in agg.percentile_rows() {
                println!(
                    "{cell:<12} {col:<14} {count:>8} {mean:>14.2} {p50:>12} {p95:>12} {p99:>12}"
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "worker" => {
            flags.reject_unknown(&["to", "threads", "rank", "metrics-addr"])?;
            let to = flags.required("to")?;
            let threads = flags.parsed("threads", 2usize)?.max(1);
            // `--rank` tags every sim_* metric this worker's replication
            // runs emit with a `rank` label — the same identity scheme
            // des-node uses — so a fleet scrape can tell the workers
            // apart after aggregation.
            let rank: Option<u64> = match flags.get("rank") {
                Some(v) => Some(v.parse().map_err(|e| format!("--rank: {e}"))?),
                None => None,
            };
            let mut cfg = EngineConfig::default().with_rank(rank);
            let _metrics = match flags.get("metrics-addr") {
                Some(addr) => {
                    let recorder = Recorder::new(&ObsConfig::enabled());
                    cfg = cfg.with_recorder(recorder.clone());
                    match MetricsServer::serve(addr, recorder) {
                        Ok(server) => {
                            eprintln!(
                                "des-svc: serving Prometheus metrics on http://{}/metrics (plaintext, no auth)",
                                server.local_addr()
                            );
                            Some(server)
                        }
                        Err(e) => {
                            eprintln!(
                                "des-svc: warning: metrics server on {addr} failed ({e}); \
                                 continuing without metrics"
                            );
                            None
                        }
                    }
                }
                None => None,
            };
            let handle = worker_attach(to, threads, cfg)
                .map_err(|e| format!("attach {to}: {e}"))?;
            eprintln!("des-svc: worker attached to {to} with {threads} thread(s)");
            handle.join();
            eprintln!("des-svc: worker released");
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            flags.reject_unknown(&["to"])?;
            let mut client = connect(&flags)?;
            client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
            // Give the service a beat to observe the stop flag before
            // the connection drops.
            std::thread::sleep(Duration::from_millis(50));
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand '{other}'\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("des-svc: {msg}");
            ExitCode::FAILURE
        }
    }
}
