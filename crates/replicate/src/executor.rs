//! The replication executor: a work-stealing pool over `(cell, rep)`
//! run tasks.
//!
//! Each task builds the cell's model graph with the job's
//! [`crate::spec::JobSpec::seed_for`] seed and runs it on the
//! sequential model engine under the `EngineConfig`'s `fault::RunPolicy`
//! (injected faults surface as structured `SimError`s; wedged runs trip
//! the per-run watchdog). Tasks are distributed PARSIR-style: all runs
//! go into a global [`Injector`], each worker owns a FIFO deque and
//! steals batches from the injector or siblings when it runs dry —
//! uneven cells (a long-lookahead PHOLD cell next to a tiny M/M/c one)
//! balance automatically.
//!
//! Rows flow back to the caller over a channel in completion order;
//! the caller (store writer, service scheduler) re-indexes by
//! `(cell, rep)`, so the aggregate is independent of scheduling.
//!
//! Cross-thread spans: when the recorder is enabled the submitting
//! thread emits a [`SpanKind::RunExec`] *Begin* per task at enqueue and
//! the executing worker emits the matching *End* (`a` = task id, `b` =
//! worker index), which `obs::pair_spans` stitches into per-run
//! queue+execute latencies and `obs::critical_path` folds into the
//! batch's wall-time attribution.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use des::{EngineConfig, SimError};
use obs::SpanKind;

use crate::agg::JobAggregate;
use crate::spec::{JobSpec, WorkloadSpec};

/// One completed run: the cell's metric columns plus wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRow {
    /// Scenario cell index.
    pub cell: u32,
    /// Replication index within the cell.
    pub rep: u32,
    /// Values aligned with the cell's columns — deterministic metrics
    /// first, [`crate::agg::WALL_COL`] last.
    pub values: Vec<u64>,
}

/// Execute one seeded run of `workload` and return its deterministic
/// metric columns (in [`WorkloadSpec::metric_names`] order, without
/// the wall column).
pub fn execute_run(
    workload: &WorkloadSpec,
    seed: u64,
    horizon: u64,
    cfg: &EngineConfig,
) -> Result<Vec<u64>, SimError> {
    let sum_suffix = |obs: &[(String, u64)], suffix: &str| -> u64 {
        obs.iter().filter(|(k, _)| k.ends_with(suffix)).map(|(_, v)| *v).sum()
    };
    let find = |obs: &[(String, u64)], key: &str| -> u64 {
        obs.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(0)
    };
    match workload {
        WorkloadSpec::Phold(p) => {
            let out = model::try_run("model-seq", cfg, model::phold::build(*p, seed, horizon))?;
            Ok(vec![
                out.stats.events_delivered,
                out.checksum,
                sum_suffix(&out.observables, ".sent_remote"),
                sum_suffix(&out.observables, ".hop_sum"),
            ])
        }
        WorkloadSpec::Mmc(m) => {
            let out = model::try_run("model-seq", cfg, model::queueing::build(*m, seed, horizon))?;
            Ok(vec![
                out.stats.events_delivered,
                out.checksum,
                find(&out.observables, "sink.completed"),
                find(&out.observables, "sink.latency_sum"),
                sum_suffix(&out.observables, ".wait_sum"),
                sum_suffix(&out.observables, ".served"),
            ])
        }
    }
}

#[derive(Clone, Copy)]
struct Task {
    cell: u32,
    rep: u32,
    /// Global task index (the `RunExec` span identity).
    id: u64,
}

/// Live progress of a running slice, shared with the service scheduler.
#[derive(Clone, Default)]
pub struct Progress {
    completed: Arc<AtomicU64>,
}

impl Progress {
    /// Runs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Count `n` more completed runs (remote rows use this too).
    pub fn add(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }
}

/// Run replications `reps` of every cell of `spec` across `threads`
/// workers, invoking `on_row` on the caller's thread for each finished
/// run (any order). The first run error cancels remaining tasks and is
/// returned after in-flight rows drain.
pub fn run_slice(
    spec: &JobSpec,
    reps: std::ops::Range<u32>,
    threads: usize,
    cfg: &EngineConfig,
    progress: &Progress,
    mut on_row: impl FnMut(RunRow),
) -> Result<(), SimError> {
    assert!(threads >= 1, "need at least one worker");
    assert!(reps.end <= spec.replications, "slice exceeds spec replications");
    let recorder = cfg.recorder();
    let tracer = recorder.tracer("replicate-submit");

    let injector = Injector::new();
    let mut tasks = 0u64;
    for cell in 0..spec.cells.len() as u32 {
        for rep in reps.clone() {
            let id = ((cell as u64) << 32) | rep as u64;
            injector.push(Task { cell, rep, id });
            if tracer.is_enabled() {
                tracer.begin(SpanKind::RunExec, id);
            }
            tasks += 1;
        }
    }
    if tasks == 0 {
        return Ok(());
    }

    let workers: Vec<Worker<Task>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Task>> = workers.iter().map(|w| w.stealer()).collect();
    let stop = AtomicBool::new(false);
    let first_error: Mutex<Option<SimError>> = Mutex::new(None);
    let (tx, rx) = mpsc::channel::<RunRow>();

    std::thread::scope(|scope| {
        for (wix, local) in workers.into_iter().enumerate() {
            let tx = tx.clone();
            let stealers = &stealers;
            let injector = &injector;
            let stop = &stop;
            let first_error = &first_error;
            let recorder = recorder.clone();
            let spec = &*spec;
            scope.spawn(move || {
                let tracer = recorder.tracer(&format!("replicate-{wix}"));
                while !stop.load(Ordering::Relaxed) {
                    let task = match find_task(&local, injector, stealers) {
                        Some(t) => t,
                        None => break, // every queue drained: slice done
                    };
                    let seed = spec.seed_for(task.cell, task.rep);
                    let started = Instant::now();
                    let workload = &spec.cells[task.cell as usize].workload;
                    match execute_run(workload, seed, spec.horizon, cfg) {
                        Ok(mut values) => {
                            values.push(started.elapsed().as_nanos() as u64);
                            if tracer.is_enabled() {
                                tracer.end(SpanKind::RunExec, task.id, wix as u64);
                            }
                            // Receiver only hangs up after workers exit.
                            let _ = tx.send(RunRow { cell: task.cell, rep: task.rep, values });
                        }
                        Err(e) => {
                            let mut slot = first_error.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        drop(tx);
        // Drain rows on the caller's thread while workers run.
        for row in rx {
            progress.add(1);
            on_row(row);
        }
    });

    match first_error.into_inner().unwrap() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn find_task(local: &Worker<Task>, injector: &Injector<Task>, stealers: &[Stealer<Task>]) -> Option<Task> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        let mut retry = false;
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for s in stealers {
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
        std::hint::spin_loop();
    }
}

/// Outcome of a whole-job sweep.
pub struct SweepOutcome {
    /// The cross-run aggregate.
    pub agg: JobAggregate,
    /// Total rows executed.
    pub rows: u64,
    /// Wall time of the sweep.
    pub wall: Duration,
}

/// Run every `(cell, rep)` of `spec` locally and aggregate. The
/// aggregate (minus wall columns) is bit-identical for any `threads`.
pub fn run_sweep(
    spec: &JobSpec,
    threads: usize,
    cfg: &EngineConfig,
) -> Result<SweepOutcome, SimError> {
    let started = Instant::now();
    let mut agg = JobAggregate::for_spec(spec);
    let progress = Progress::default();
    run_slice(spec, 0..spec.replications, threads, cfg, &progress, |row| {
        agg.record_row(row.cell as usize, &row.values);
    })?;
    Ok(SweepOutcome { rows: progress.completed(), agg, wall: started.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::sample_spec;

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let spec = sample_spec();
        let cfg = EngineConfig::default();
        let one = run_sweep(&spec, 1, &cfg).expect("1 thread");
        let four = run_sweep(&spec, 4, &cfg).expect("4 threads");
        assert_eq!(one.rows, spec.total_runs());
        assert_eq!(four.rows, spec.total_runs());
        assert_eq!(one.agg.digest(), four.agg.digest());
        // Deterministic columns identical histogram-for-histogram.
        for (a, b) in one.agg.cells.iter().zip(four.agg.cells.iter()) {
            for ((col, ha), hb) in a.columns.iter().zip(a.hists.iter()).zip(b.hists.iter()) {
                if col != crate::agg::WALL_COL {
                    assert_eq!(ha, hb, "column {col}");
                }
            }
        }
    }

    #[test]
    fn slices_union_to_the_full_sweep() {
        let spec = sample_spec();
        let cfg = EngineConfig::default();
        let whole = run_sweep(&spec, 2, &cfg).expect("whole");
        let mut split = JobAggregate::for_spec(&spec);
        for range in [0..4u32, 4..7, 7..spec.replications] {
            let progress = Progress::default();
            run_slice(&spec, range, 2, &cfg, &progress, |row| {
                split.record_row(row.cell as usize, &row.values);
            })
            .expect("slice");
        }
        assert_eq!(split.digest(), whole.agg.digest());
    }

    #[test]
    fn cross_thread_run_spans_pair_up() {
        let mut spec = sample_spec();
        spec.replications = 4;
        spec.cells.truncate(1);
        let recorder = obs::Recorder::new(&obs::ObsConfig::enabled());
        let cfg = EngineConfig::default().with_recorder(recorder.clone());
        run_sweep(&spec, 2, &cfg).expect("sweep");
        let dumps = recorder.recent_traces(usize::MAX);
        let spans = obs::pair_spans(&dumps);
        let runs: Vec<_> =
            spans.iter().filter(|s| s.kind == SpanKind::RunExec).collect();
        assert_eq!(runs.len(), 4, "every task's Begin/End must pair");
        for s in &runs {
            assert_eq!(s.begin_thread, "replicate-submit");
            assert!(s.end_thread.starts_with("replicate-"));
        }
        let report = obs::critical_path(&dumps);
        assert!(report.wall_ns > 0);
        assert!(!report.per_thread.is_empty());
    }

    #[test]
    fn injected_fault_surfaces_as_error() {
        let spec = sample_spec();
        // Every run panics via the injected fault; the pool must stop
        // and surface the structured error instead of hanging.
        let cfg = EngineConfig::default()
            .with_fault_plan(des::FaultPlan::seeded(1).panic_in_shard(0));
        match run_sweep(&spec, 2, &cfg) {
            Err(SimError::TaskPanicked { .. }) => {}
            other => panic!("expected TaskPanicked, got {other:?}", other = other.map(|_| ())),
        }
    }
}
