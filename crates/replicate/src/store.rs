//! The columnar run store: per-metric column chunks on disk.
//!
//! One file per job. Layout (all frames via [`crate::frame`], own
//! magic so a store file can never be confused with a checkpoint or a
//! protocol stream):
//!
//! ```text
//! HDR   { job spec (versioned codec) }
//! CHUNK { cell, column, count, (rep, value) × count }   …repeated…
//! END   { total rows, aggregate digest }
//! ```
//!
//! Chunks are *columnar*: each frame carries one metric column of one
//! scenario cell, so a reader that only wants `latency_sum` percentiles
//! touches only those frames. Rows arrive from the work-stealing pool
//! (and remote ranks) in completion order; each carries its replication
//! index, so on-disk order is irrelevant to the aggregate — histograms
//! are order-free and the reader re-indexes by `(cell, column, rep)`.
//!
//! Durability follows `checkpoint.rs`: everything is written to
//! `<path>.tmp`, fsync'd, then atomically renamed. A crash leaves no
//! file, an ignorable `.tmp`, or a complete file whose CRCs and END
//! digest verify. [`RunStoreReader::open`] validates every frame CRC,
//! re-aggregates, recomputes the deterministic digest and compares it
//! to the writer's — a reread is bit-identical or it is an error.

use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use net::wire::{get_uvarint, put_uvarint, WireError};

use crate::agg::JobAggregate;
use crate::spec::JobSpec;

/// Store file magic ("column store", distinct from net and checkpoint).
pub const STORE_MAGIC: u16 = 0x5C01;
/// Store format version.
pub const STORE_VERSION: u8 = 1;

const KIND_HDR: u8 = 1;
const KIND_CHUNK: u8 = 2;
const KIND_END: u8 = 3;

/// Rows buffered per cell before its columns are flushed as chunks.
const CHUNK_ROWS: usize = 256;

/// Everything that can go wrong reading or writing a store file.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Framing or codec violation (CRC, truncation, bad varint…).
    Wire(WireError),
    /// A `(cell, column, rep)` slot was written twice.
    DuplicateRow { cell: u32, rep: u32 },
    /// The file ended with fewer rows than END declared, or a rep slot
    /// was never filled.
    Incomplete { expected: u64, found: u64 },
    /// The re-aggregated digest differs from the one the writer sealed.
    DigestMismatch { expected: u64, found: u64 },
    /// A chunk referenced a cell/column/rep outside the spec's shape.
    BadLayout,
    /// No END frame — the writer never finished (torn file).
    Unsealed,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::Wire(e) => write!(f, "store frame: {e}"),
            StoreError::DuplicateRow { cell, rep } => {
                write!(f, "duplicate row cell={cell} rep={rep}")
            }
            StoreError::Incomplete { expected, found } => {
                write!(f, "incomplete store: {found}/{expected} rows")
            }
            StoreError::DigestMismatch { expected, found } => write!(
                f,
                "aggregate digest mismatch: sealed {expected:#018x}, reread {found:#018x}"
            ),
            StoreError::BadLayout => write!(f, "chunk outside the spec's shape"),
            StoreError::Unsealed => write!(f, "store was never sealed (missing END)"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

/// Streaming writer: buffers rows per cell, flushes columnar chunks,
/// seals with END + fsync + rename.
pub struct RunStoreWriter {
    out: BufWriter<std::fs::File>,
    tmp: PathBuf,
    path: PathBuf,
    /// Per cell: buffered `(rep, row values)` not yet chunked.
    pending: Vec<Vec<(u32, Vec<u64>)>>,
    /// Column count per cell (deterministic metrics + wall).
    widths: Vec<usize>,
    agg: JobAggregate,
}

impl RunStoreWriter {
    /// Create `<path>.tmp` and write the header.
    pub fn create(path: impl Into<PathBuf>, spec: &JobSpec) -> Result<RunStoreWriter, StoreError> {
        let path = path.into();
        let name = path.file_name().unwrap_or_default().to_string_lossy().to_string();
        let tmp = path.with_file_name(format!("{name}.tmp"));
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut out = BufWriter::new(std::fs::File::create(&tmp)?);
        out.write_all(&crate::frame::encode(STORE_MAGIC, STORE_VERSION, KIND_HDR, &spec.encode()))?;
        let agg = JobAggregate::for_spec(spec);
        let widths = agg.cells.iter().map(|c| c.hists.len()).collect();
        Ok(RunStoreWriter {
            out,
            tmp,
            path,
            pending: vec![Vec::new(); spec.cells.len()],
            widths,
            agg,
        })
    }

    /// Stream one run row (values aligned with the cell's columns,
    /// wall last). Rows may arrive in any order.
    pub fn push_row(&mut self, cell: u32, rep: u32, values: &[u64]) -> Result<(), StoreError> {
        let c = cell as usize;
        if c >= self.pending.len() || values.len() != self.widths[c] {
            return Err(StoreError::BadLayout);
        }
        self.agg.record_row(c, values);
        self.pending[c].push((rep, values.to_vec()));
        if self.pending[c].len() >= CHUNK_ROWS {
            self.flush_cell(c)?;
        }
        Ok(())
    }

    fn flush_cell(&mut self, cell: usize) -> Result<(), StoreError> {
        let rows = std::mem::take(&mut self.pending[cell]);
        if rows.is_empty() {
            return Ok(());
        }
        for col in 0..self.widths[cell] {
            let mut payload = Vec::with_capacity(rows.len() * 4 + 16);
            put_uvarint(&mut payload, cell as u64);
            put_uvarint(&mut payload, col as u64);
            put_uvarint(&mut payload, rows.len() as u64);
            for (rep, values) in &rows {
                put_uvarint(&mut payload, *rep as u64);
                put_uvarint(&mut payload, values[col]);
            }
            self.out
                .write_all(&crate::frame::encode(STORE_MAGIC, STORE_VERSION, KIND_CHUNK, &payload))?;
        }
        Ok(())
    }

    /// The aggregate folded so far (what END will seal).
    pub fn aggregate(&self) -> &JobAggregate {
        &self.agg
    }

    /// Flush remaining chunks, seal with END, fsync, rename into place.
    /// Returns the final aggregate.
    pub fn finish(mut self) -> Result<JobAggregate, StoreError> {
        for cell in 0..self.pending.len() {
            self.flush_cell(cell)?;
        }
        let mut end = Vec::new();
        put_uvarint(&mut end, self.agg.total_runs);
        put_uvarint(&mut end, self.agg.digest());
        self.out.write_all(&crate::frame::encode(STORE_MAGIC, STORE_VERSION, KIND_END, &end))?;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        drop(self.out);
        std::fs::rename(&self.tmp, &self.path)?;
        Ok(self.agg)
    }
}

/// A fully validated store file.
pub struct RunStoreReader {
    /// The spec the header carried.
    pub spec: JobSpec,
    /// Per cell, per column, per rep: the stored values.
    pub columns: Vec<Vec<Vec<u64>>>,
    /// The re-aggregated (and digest-verified) cross-run aggregate.
    pub aggregate: JobAggregate,
}

impl RunStoreReader {
    /// Open and validate `path`: every frame CRC, the row shape, row
    /// completeness, and the sealed aggregate digest.
    pub fn open(path: impl AsRef<Path>) -> Result<RunStoreReader, StoreError> {
        let file = std::fs::File::open(path.as_ref())?;
        Self::read_from(std::io::BufReader::new(file))
    }

    /// Same as [`RunStoreReader::open`] over any reader.
    pub fn read_from(mut r: impl Read) -> Result<RunStoreReader, StoreError> {
        let (kind, hdr) = crate::frame::read(STORE_MAGIC, STORE_VERSION, &mut r)?
            .ok_or(StoreError::Unsealed)?;
        if kind != KIND_HDR {
            return Err(StoreError::Wire(WireError::BadKind(kind)));
        }
        let spec = JobSpec::decode(&hdr)?;
        let shape = JobAggregate::for_spec(&spec);
        let reps = spec.replications as usize;
        // cell → col → rep → value; filled tracks which slots are set.
        let mut columns: Vec<Vec<Vec<u64>>> =
            shape.cells.iter().map(|c| vec![vec![0u64; reps]; c.hists.len()]).collect();
        let mut filled: Vec<Vec<Vec<bool>>> =
            shape.cells.iter().map(|c| vec![vec![false; reps]; c.hists.len()]).collect();

        let mut sealed: Option<(u64, u64)> = None;
        loop {
            match crate::frame::read(STORE_MAGIC, STORE_VERSION, &mut r)? {
                None => break,
                Some(_) if sealed.is_some() => {
                    return Err(StoreError::Wire(WireError::TrailingBytes))
                }
                Some((KIND_CHUNK, payload)) => {
                    decode_chunk(&payload, &mut columns, &mut filled)?;
                }
                Some((KIND_END, payload)) => {
                    let mut pos = 0;
                    let rows = get_uvarint(&payload, &mut pos)?;
                    let digest = get_uvarint(&payload, &mut pos)?;
                    if pos != payload.len() {
                        return Err(StoreError::Wire(WireError::TrailingBytes));
                    }
                    sealed = Some((rows, digest));
                }
                Some((kind, _)) => return Err(StoreError::Wire(WireError::BadKind(kind))),
            }
        }
        let (sealed_rows, sealed_digest) = sealed.ok_or(StoreError::Unsealed)?;

        // Completeness: every (cell, col, rep) slot exactly once.
        let mut aggregate = JobAggregate::for_spec(&spec);
        for (cell, cols) in columns.iter().enumerate() {
            for rep in 0..reps {
                for col_filled in &filled[cell] {
                    if !col_filled[rep] {
                        let found: u64 = filled
                            .iter()
                            .flat_map(|cols| cols.first())
                            .map(|c| c.iter().filter(|&&f| f).count() as u64)
                            .sum();
                        return Err(StoreError::Incomplete { expected: sealed_rows, found });
                    }
                }
                let row: Vec<u64> = cols.iter().map(|col| col[rep]).collect();
                aggregate.record_row(cell, &row);
            }
        }
        if aggregate.total_runs != sealed_rows {
            return Err(StoreError::Incomplete {
                expected: sealed_rows,
                found: aggregate.total_runs,
            });
        }
        let found = aggregate.digest();
        if found != sealed_digest {
            return Err(StoreError::DigestMismatch { expected: sealed_digest, found });
        }
        Ok(RunStoreReader { spec, columns, aggregate })
    }
}

fn decode_chunk(
    payload: &[u8],
    columns: &mut [Vec<Vec<u64>>],
    filled: &mut [Vec<Vec<bool>>],
) -> Result<(), StoreError> {
    let mut pos = 0;
    let cell = get_uvarint(payload, &mut pos)? as usize;
    let col = get_uvarint(payload, &mut pos)? as usize;
    let count = get_uvarint(payload, &mut pos)?;
    if cell >= columns.len() || col >= columns[cell].len() {
        return Err(StoreError::BadLayout);
    }
    let reps = columns[cell][col].len();
    if count > reps as u64 {
        return Err(StoreError::BadLayout);
    }
    for _ in 0..count {
        let rep = get_uvarint(payload, &mut pos)? as usize;
        let value = get_uvarint(payload, &mut pos)?;
        if rep >= reps {
            return Err(StoreError::BadLayout);
        }
        if filled[cell][col][rep] {
            return Err(StoreError::DuplicateRow { cell: cell as u32, rep: rep as u32 });
        }
        filled[cell][col][rep] = true;
        columns[cell][col][rep] = value;
    }
    if pos != payload.len() {
        return Err(StoreError::Wire(WireError::TrailingBytes));
    }
    Ok(())
}

/// Collect `job-*.cols` files under `dir` (newest job id last).
pub fn list_store_files(dir: impl AsRef<Path>) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "cols")
                && p.file_stem().is_some_and(|s| s.to_string_lossy().starts_with("job-"))
        })
        .collect();
    out.sort();
    Ok(out)
}

/// In-memory row sink the service uses before chunks hit disk; also
/// handy in tests. Maps `(cell, rep)` → values.
#[derive(Default)]
pub struct RowBuffer {
    rows: HashMap<(u32, u32), Vec<u64>>,
}

impl RowBuffer {
    /// Insert a row; duplicate `(cell, rep)` is an error.
    pub fn insert(&mut self, cell: u32, rep: u32, values: Vec<u64>) -> Result<(), StoreError> {
        if self.rows.insert((cell, rep), values).is_some() {
            return Err(StoreError::DuplicateRow { cell, rep });
        }
        Ok(())
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drain in deterministic `(cell, rep)` order.
    pub fn drain_sorted(&mut self) -> Vec<((u32, u32), Vec<u64>)> {
        let mut rows: Vec<_> = self.rows.drain().collect();
        rows.sort_by_key(|(k, _)| *k);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::sample_spec;

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("replicate-store-{tag}-{}.cols", std::process::id()));
        p
    }

    fn write_full_store(path: &Path, spec: &JobSpec) -> JobAggregate {
        let mut w = RunStoreWriter::create(path, spec).expect("create");
        let widths: Vec<usize> =
            JobAggregate::for_spec(spec).cells.iter().map(|c| c.hists.len()).collect();
        // Deterministic synthetic rows, pushed in scrambled order.
        let mut order: Vec<(u32, u32)> = (0..spec.cells.len() as u32)
            .flat_map(|c| (0..spec.replications).map(move |r| (c, r)))
            .collect();
        order.sort_by_key(|&(c, r)| crate::spec::splitmix64(((c as u64) << 32) | r as u64));
        for (cell, rep) in order {
            let row: Vec<u64> = (0..widths[cell as usize])
                .map(|col| {
                    crate::spec::splitmix64(spec.seed_for(cell, rep) ^ col as u64) >> 40
                })
                .collect();
            w.push_row(cell, rep, &row).expect("push");
        }
        w.finish().expect("finish")
    }

    #[test]
    fn store_round_trips_to_identical_aggregate() {
        let spec = sample_spec();
        let path = tmp_path("roundtrip");
        let sealed = write_full_store(&path, &spec);
        let reread = RunStoreReader::open(&path).expect("open");
        assert_eq!(reread.spec, spec);
        assert_eq!(reread.aggregate, sealed);
        assert_eq!(reread.aggregate.digest(), sealed.digest());
        assert_eq!(reread.aggregate.total_runs, spec.total_runs());
        // Columnar access: one column of one cell.
        assert_eq!(reread.columns[0][0].len(), spec.replications as usize);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_store_leaves_only_tmp() {
        let spec = sample_spec();
        let path = tmp_path("torn");
        let mut w = RunStoreWriter::create(&path, &spec).expect("create");
        w.push_row(0, 0, &[1; 5]).expect("push");
        drop(w); // no finish(): simulated crash
        assert!(!path.exists(), "unfinished store must not appear at the final path");
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(tmp.exists());
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn truncation_and_corruption_are_errors_never_panics() {
        let spec = sample_spec();
        let path = tmp_path("corrupt");
        write_full_store(&path, &spec);
        let bytes = std::fs::read(&path).expect("read");
        // Every truncation point fails.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                RunStoreReader::read_from(&bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        // Every byte corruption fails (CRC per frame covers all bytes).
        for i in (0..bytes.len()).step_by(3) {
            let mut m = bytes.clone();
            m[i] ^= 0x10;
            assert!(RunStoreReader::read_from(&m[..]).is_err(), "flip at {i} must error");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_rows_detected() {
        let spec = sample_spec();
        let path = tmp_path("missing");
        let mut w = RunStoreWriter::create(&path, &spec).expect("create");
        let width = JobAggregate::for_spec(&spec).cells[0].hists.len();
        w.push_row(0, 0, &vec![1; width]).expect("push");
        w.finish().expect("finish");
        match RunStoreReader::open(&path) {
            Err(StoreError::Incomplete { .. }) => {}
            other => panic!("expected Incomplete, got {other:?}", other = other.err()),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_rows_detected() {
        let spec = sample_spec();
        let mut buf = RowBuffer::default();
        buf.insert(0, 1, vec![1]).unwrap();
        assert!(matches!(
            buf.insert(0, 1, vec![2]),
            Err(StoreError::DuplicateRow { cell: 0, rep: 1 })
        ));
        // And on disk: write the same rep twice.
        let path = tmp_path("dup");
        let mut w = RunStoreWriter::create(&path, &spec).expect("create");
        let width = JobAggregate::for_spec(&spec).cells[0].hists.len();
        for _ in 0..2 {
            w.push_row(0, 3, &vec![9; width]).expect("push accepts; reader rejects");
        }
        w.finish().expect("finish");
        assert!(RunStoreReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
