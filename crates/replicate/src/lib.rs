//! # sim-replicate — the massive-replication layer
//!
//! The paper parallelizes a *single* simulation run; the dominant
//! production axis is the embarrassingly-parallel one: thousands of
//! independently seeded replications of the same model (PARSIR's
//! argument, and rs-sim's rayon-over-replications shape). This crate
//! is that layer, grown into a long-lived service:
//!
//! * [`spec`] — a [`spec::JobSpec`] is a seed sweep × parameter grid
//!   over `sim-model` workloads (PHOLD, M/M/c), with a versioned total
//!   codec and a pure `(base_seed, cell, rep) → seed` derivation.
//! * [`executor`] — a work-stealing run pool (global injector +
//!   per-worker deques) fanning `(cell, rep)` tasks across cores, each
//!   run under the `EngineConfig`'s `fault::RunPolicy`, with
//!   cross-thread `RunExec` spans for critical-path attribution.
//! * [`store`] — a hand-rolled columnar run store: per-metric column
//!   chunks, varint+CRC32 framing, two-phase tmp+fsync+rename writes;
//!   the reader re-validates every CRC and re-aggregates to the same
//!   digest or errors.
//! * [`agg`] — mergeable log₂ histograms (sim-obs bucket layout)
//!   yielding p50/p95/p99 per scenario cell; merging is associative,
//!   so any local/remote split aggregates identically.
//! * [`proto`] / [`service`] — the `des-svc` job service: Hello-fenced
//!   versioned frames over TCP, a FIFO job queue scheduled across the
//!   local pool and remote worker ranks, progress exposed through the
//!   sim-obs Prometheus endpoint.
//!
//! Determinism contract (DESIGN.md §14): every metric column except
//! wall-clock is a pure function of the run seed, so repeat runs of
//! the same spec produce **bit-identical aggregates** — same p50/p95/
//! p99, same [`agg::JobAggregate::digest`] — regardless of thread
//! count, scheduling order, or worker placement.

pub mod agg;
pub mod executor;
pub(crate) mod frame;
pub mod proto;
pub mod service;
pub mod spec;
pub mod store;

pub use agg::{fnv1a, CellAgg, JobAggregate, MergeHist, WALL_COL};
pub use executor::{execute_run, run_slice, run_sweep, Progress, RunRow, SweepOutcome};
pub use proto::{JobState, SvcFrame, SVC_MAGIC, SVC_VERSION};
pub use service::{Service, SvcClient, SvcConfig, SvcError};
pub use spec::{JobSpec, ScenarioCell, WorkloadSpec, SPEC_VERSION};
pub use store::{RunStoreReader, RunStoreWriter, StoreError};
