//! The `des-svc` job protocol: Hello-fenced, versioned frames over TCP.
//!
//! Same shape as the sim-net shard fabric: a fixed header (own magic +
//! version), varint-packed payload, CRC32 trailer (via
//! [`crate::frame`]), and a mandatory `Hello` exchange before anything
//! else — a client or worker whose protocol digest or version differs
//! is rejected at the first frame, never half-way into a job. The
//! decoder is total: every malformed byte string maps to a
//! [`WireError`].
//!
//! Two peer roles speak it:
//!
//! * **clients** submit [`crate::spec::JobSpec`]s, poll progress and
//!   fetch aggregates (`Submit`/`Progress`/`Fetch`);
//! * **workers** (remote ranks) register and receive replication
//!   slices (`Assign`), streaming rows back (`RowBatch`) until the
//!   slice completes (`AssignDone`).

use net::wire::{get_u8, get_uvarint, put_uvarint, WireError};

use crate::agg::JobAggregate;
use crate::executor::RunRow;
use crate::spec::JobSpec;

/// Job-protocol magic (distinct from the shard fabric and the store).
pub const SVC_MAGIC: u16 = 0x5DE6;
/// Job-protocol version.
pub const SVC_VERSION: u8 = 1;
/// The digest both ends present in `Hello`: a fingerprint of the
/// protocol revision (bump [`SVC_VERSION`] *and* this string on any
/// semantic change).
pub fn proto_digest() -> u64 {
    crate::agg::fnv1a(b"des-svc job protocol v1")
}

/// Rows per `RowBatch` frame a worker streams back.
pub const ROW_BATCH: usize = 64;

const KIND_HELLO: u8 = 1;
const KIND_HELLO_OK: u8 = 2;
const KIND_SUBMIT: u8 = 3;
const KIND_SUBMITTED: u8 = 4;
const KIND_REJECT: u8 = 5;
const KIND_PROGRESS: u8 = 6;
const KIND_PROGRESS_REPORT: u8 = 7;
const KIND_FETCH: u8 = 8;
const KIND_RESULTS: u8 = 9;
const KIND_ASSIGN: u8 = 10;
const KIND_ROW_BATCH: u8 = 11;
const KIND_ASSIGN_DONE: u8 = 12;
const KIND_SHUTDOWN: u8 = 13;

/// Who is dialing in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Role {
    /// Submits jobs and fetches results.
    Client = 0,
    /// Executes assigned replication slices.
    Worker = 1,
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JobState {
    /// Waiting in the FIFO queue.
    Queued = 0,
    /// Being executed.
    Running = 1,
    /// Finished; results fetchable.
    Done = 2,
    /// Aborted by a run error.
    Failed = 3,
}

impl JobState {
    /// Stable label for reports and metrics.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> Result<JobState, WireError> {
        Ok(match v {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcFrame {
    /// First frame on every connection.
    Hello {
        /// Dialing role.
        role: Role,
        /// Worker thread count (0 for clients).
        threads: u32,
        /// Must equal [`proto_digest`].
        digest: u64,
    },
    /// Server's fence acknowledgement.
    HelloOk {
        /// Server session epoch (restarts bump it).
        epoch: u64,
    },
    /// Client → server: enqueue a job.
    Submit {
        /// The sweep to run.
        spec: JobSpec,
    },
    /// Server → client: job accepted.
    Submitted {
        /// Assigned job id.
        job: u64,
    },
    /// Server → peer: request refused (reason is human-readable).
    Reject {
        /// Why.
        reason: String,
    },
    /// Client → server: how far along is `job`?
    Progress {
        /// Job id.
        job: u64,
    },
    /// Server → client: live progress.
    ProgressReport {
        /// Job id.
        job: u64,
        /// Lifecycle state.
        state: JobState,
        /// Runs completed.
        completed: u64,
        /// Total runs the job will execute.
        total: u64,
        /// Jobs waiting behind this one.
        queued_jobs: u64,
        /// Jobs currently executing.
        inflight_jobs: u64,
    },
    /// Client → server: fetch the aggregate of a finished job.
    Fetch {
        /// Job id.
        job: u64,
    },
    /// Server → client: the cross-run aggregate.
    Results {
        /// Job id.
        job: u64,
        /// Aggregated histograms (digest-stable minus wall columns).
        agg: JobAggregate,
    },
    /// Server → worker: run replications `[rep_start, rep_start+rep_count)`
    /// of every cell.
    Assign {
        /// Job id.
        job: u64,
        /// First replication index of the slice.
        rep_start: u32,
        /// Slice length.
        rep_count: u32,
        /// The spec to execute.
        spec: JobSpec,
    },
    /// Worker → server: a batch of finished rows.
    RowBatch {
        /// Job id.
        job: u64,
        /// Completed rows (any order).
        rows: Vec<RunRow>,
    },
    /// Worker → server: the assigned slice is finished (or failed —
    /// the server re-runs failed slices locally).
    AssignDone {
        /// Job id.
        job: u64,
        /// Echo of the assignment.
        rep_start: u32,
        /// Echo of the assignment.
        rep_count: u32,
        /// False when the slice errored; its rows must be discarded.
        ok: bool,
    },
    /// Ask the server to drain and exit (clients), or the server
    /// telling a worker to exit.
    Shutdown,
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = get_uvarint(buf, pos)? as usize;
    if len > 1024 {
        return Err(WireError::BadValue);
    }
    let end = pos.checked_add(len).ok_or(WireError::Overflow)?;
    if end > buf.len() {
        return Err(WireError::Truncated);
    }
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| WireError::BadValue)?;
    *pos = end;
    Ok(s.to_string())
}

fn put_row(out: &mut Vec<u8>, row: &RunRow) {
    put_uvarint(out, row.cell as u64);
    put_uvarint(out, row.rep as u64);
    put_uvarint(out, row.values.len() as u64);
    for &v in &row.values {
        put_uvarint(out, v);
    }
}

fn get_row(buf: &[u8], pos: &mut usize) -> Result<RunRow, WireError> {
    let cell = get_uvarint(buf, pos)?;
    let rep = get_uvarint(buf, pos)?;
    let n = get_uvarint(buf, pos)?;
    if cell > u32::MAX as u64 || rep > u32::MAX as u64 || n > 64 {
        return Err(WireError::BadValue);
    }
    let mut values = Vec::with_capacity(n as usize);
    for _ in 0..n {
        values.push(get_uvarint(buf, pos)?);
    }
    Ok(RunRow { cell: cell as u32, rep: rep as u32, values })
}

fn kind_of(frame: &SvcFrame) -> u8 {
    match frame {
        SvcFrame::Hello { .. } => KIND_HELLO,
        SvcFrame::HelloOk { .. } => KIND_HELLO_OK,
        SvcFrame::Submit { .. } => KIND_SUBMIT,
        SvcFrame::Submitted { .. } => KIND_SUBMITTED,
        SvcFrame::Reject { .. } => KIND_REJECT,
        SvcFrame::Progress { .. } => KIND_PROGRESS,
        SvcFrame::ProgressReport { .. } => KIND_PROGRESS_REPORT,
        SvcFrame::Fetch { .. } => KIND_FETCH,
        SvcFrame::Results { .. } => KIND_RESULTS,
        SvcFrame::Assign { .. } => KIND_ASSIGN,
        SvcFrame::RowBatch { .. } => KIND_ROW_BATCH,
        SvcFrame::AssignDone { .. } => KIND_ASSIGN_DONE,
        SvcFrame::Shutdown => KIND_SHUTDOWN,
    }
}

/// Encode one frame (header + payload + CRC).
pub fn encode_svc_frame(frame: &SvcFrame) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    match frame {
        SvcFrame::Hello { role, threads, digest } => {
            p.push(*role as u8);
            put_uvarint(&mut p, *threads as u64);
            put_uvarint(&mut p, *digest);
        }
        SvcFrame::HelloOk { epoch } => put_uvarint(&mut p, *epoch),
        SvcFrame::Submit { spec } => p.extend_from_slice(&spec.encode()),
        SvcFrame::Submitted { job } => put_uvarint(&mut p, *job),
        SvcFrame::Reject { reason } => put_string(&mut p, reason),
        SvcFrame::Progress { job } => put_uvarint(&mut p, *job),
        SvcFrame::ProgressReport { job, state, completed, total, queued_jobs, inflight_jobs } => {
            put_uvarint(&mut p, *job);
            p.push(*state as u8);
            put_uvarint(&mut p, *completed);
            put_uvarint(&mut p, *total);
            put_uvarint(&mut p, *queued_jobs);
            put_uvarint(&mut p, *inflight_jobs);
        }
        SvcFrame::Fetch { job } => put_uvarint(&mut p, *job),
        SvcFrame::Results { job, agg } => {
            put_uvarint(&mut p, *job);
            p.extend_from_slice(&agg.encode());
        }
        SvcFrame::Assign { job, rep_start, rep_count, spec } => {
            put_uvarint(&mut p, *job);
            put_uvarint(&mut p, *rep_start as u64);
            put_uvarint(&mut p, *rep_count as u64);
            p.extend_from_slice(&spec.encode());
        }
        SvcFrame::RowBatch { job, rows } => {
            put_uvarint(&mut p, *job);
            put_uvarint(&mut p, rows.len() as u64);
            for row in rows {
                put_row(&mut p, row);
            }
        }
        SvcFrame::AssignDone { job, rep_start, rep_count, ok } => {
            put_uvarint(&mut p, *job);
            put_uvarint(&mut p, *rep_start as u64);
            put_uvarint(&mut p, *rep_count as u64);
            p.push(*ok as u8);
        }
        SvcFrame::Shutdown => {}
    }
    crate::frame::encode(SVC_MAGIC, SVC_VERSION, kind_of(frame), &p)
}

/// Decode one frame payload. Total: every malformed input errors.
pub fn decode_svc_payload(kind: u8, buf: &[u8]) -> Result<SvcFrame, WireError> {
    let mut pos = 0;
    let frame = match kind {
        KIND_HELLO => {
            let role = match get_u8(buf, &mut pos)? {
                0 => Role::Client,
                1 => Role::Worker,
                other => return Err(WireError::BadTag(other)),
            };
            let threads = get_uvarint(buf, &mut pos)?;
            if threads > 4096 {
                return Err(WireError::BadValue);
            }
            SvcFrame::Hello { role, threads: threads as u32, digest: get_uvarint(buf, &mut pos)? }
        }
        KIND_HELLO_OK => SvcFrame::HelloOk { epoch: get_uvarint(buf, &mut pos)? },
        KIND_SUBMIT => SvcFrame::Submit { spec: JobSpec::decode_at(buf, &mut pos)? },
        KIND_SUBMITTED => SvcFrame::Submitted { job: get_uvarint(buf, &mut pos)? },
        KIND_REJECT => SvcFrame::Reject { reason: get_string(buf, &mut pos)? },
        KIND_PROGRESS => SvcFrame::Progress { job: get_uvarint(buf, &mut pos)? },
        KIND_PROGRESS_REPORT => SvcFrame::ProgressReport {
            job: get_uvarint(buf, &mut pos)?,
            state: JobState::from_u8(get_u8(buf, &mut pos)?)?,
            completed: get_uvarint(buf, &mut pos)?,
            total: get_uvarint(buf, &mut pos)?,
            queued_jobs: get_uvarint(buf, &mut pos)?,
            inflight_jobs: get_uvarint(buf, &mut pos)?,
        },
        KIND_FETCH => SvcFrame::Fetch { job: get_uvarint(buf, &mut pos)? },
        KIND_RESULTS => SvcFrame::Results {
            job: get_uvarint(buf, &mut pos)?,
            agg: JobAggregate::decode_at(buf, &mut pos)?,
        },
        KIND_ASSIGN => {
            let job = get_uvarint(buf, &mut pos)?;
            let rep_start = get_uvarint(buf, &mut pos)?;
            let rep_count = get_uvarint(buf, &mut pos)?;
            if rep_start > u32::MAX as u64 || rep_count > u32::MAX as u64 {
                return Err(WireError::BadValue);
            }
            SvcFrame::Assign {
                job,
                rep_start: rep_start as u32,
                rep_count: rep_count as u32,
                spec: JobSpec::decode_at(buf, &mut pos)?,
            }
        }
        KIND_ROW_BATCH => {
            let job = get_uvarint(buf, &mut pos)?;
            let n = get_uvarint(buf, &mut pos)?;
            if n > (ROW_BATCH * 4) as u64 {
                return Err(WireError::BadValue);
            }
            let mut rows = Vec::with_capacity(n as usize);
            for _ in 0..n {
                rows.push(get_row(buf, &mut pos)?);
            }
            SvcFrame::RowBatch { job, rows }
        }
        KIND_ASSIGN_DONE => {
            let job = get_uvarint(buf, &mut pos)?;
            let rep_start = get_uvarint(buf, &mut pos)?;
            let rep_count = get_uvarint(buf, &mut pos)?;
            if rep_start > u32::MAX as u64 || rep_count > u32::MAX as u64 {
                return Err(WireError::BadValue);
            }
            SvcFrame::AssignDone {
                job,
                rep_start: rep_start as u32,
                rep_count: rep_count as u32,
                ok: match get_u8(buf, &mut pos)? {
                    0 => false,
                    1 => true,
                    other => return Err(WireError::BadTag(other)),
                },
            }
        }
        KIND_SHUTDOWN => SvcFrame::Shutdown,
        other => return Err(WireError::BadKind(other)),
    };
    if pos != buf.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(frame)
}

/// Read one frame from a blocking reader (`Ok(None)` = clean EOF).
pub fn read_svc_frame(r: &mut impl std::io::Read) -> Result<Option<SvcFrame>, WireError> {
    match crate::frame::read(SVC_MAGIC, SVC_VERSION, r)? {
        None => Ok(None),
        Some((kind, payload)) => Ok(Some(decode_svc_payload(kind, &payload)?)),
    }
}

/// Write one frame to a blocking writer.
pub fn write_svc_frame(w: &mut impl std::io::Write, frame: &SvcFrame) -> std::io::Result<()> {
    w.write_all(&encode_svc_frame(frame))?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::sample_spec;

    fn sample_frames() -> Vec<SvcFrame> {
        let spec = sample_spec();
        let mut agg = JobAggregate::for_spec(&spec);
        let width = agg.cells[0].hists.len();
        agg.record_row(0, &vec![7; width]);
        vec![
            SvcFrame::Hello { role: Role::Client, threads: 0, digest: proto_digest() },
            SvcFrame::Hello { role: Role::Worker, threads: 8, digest: proto_digest() },
            SvcFrame::HelloOk { epoch: 3 },
            SvcFrame::Submit { spec: spec.clone() },
            SvcFrame::Submitted { job: 1 },
            SvcFrame::Reject { reason: "job 9 unknown".into() },
            SvcFrame::Progress { job: 1 },
            SvcFrame::ProgressReport {
                job: 1,
                state: JobState::Running,
                completed: 120,
                total: 400,
                queued_jobs: 2,
                inflight_jobs: 1,
            },
            SvcFrame::Fetch { job: 1 },
            SvcFrame::Results { job: 1, agg },
            SvcFrame::Assign { job: 1, rep_start: 100, rep_count: 50, spec },
            SvcFrame::RowBatch {
                job: 1,
                rows: vec![
                    RunRow { cell: 0, rep: 3, values: vec![1, 2, 3] },
                    RunRow { cell: 2, rep: 107, values: vec![u64::MAX, 0] },
                ],
            },
            SvcFrame::AssignDone { job: 1, rep_start: 100, rep_count: 50, ok: true },
            SvcFrame::AssignDone { job: 1, rep_start: 0, rep_count: 1, ok: false },
            SvcFrame::Shutdown,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let bytes = encode_svc_frame(&frame);
            let mut r = &bytes[..];
            let back = read_svc_frame(&mut r).expect("read").expect("some");
            assert_eq!(back, frame);
            assert!(read_svc_frame(&mut r).expect("eof").is_none());
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_svc_frame(f));
        }
        let mut r = &stream[..];
        for f in &frames {
            assert_eq!(&read_svc_frame(&mut r).unwrap().unwrap(), f);
        }
        assert!(read_svc_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn every_truncation_errors() {
        for frame in sample_frames() {
            let bytes = encode_svc_frame(&frame);
            for cut in 1..bytes.len() {
                let mut r = &bytes[..cut];
                assert!(read_svc_frame(&mut r).is_err(), "cut {cut} of {frame:?}");
            }
        }
    }

    #[test]
    fn corruption_is_caught_never_panics() {
        for frame in sample_frames() {
            let bytes = encode_svc_frame(&frame);
            for i in 0..bytes.len() {
                let mut m = bytes.clone();
                m[i] ^= 0x20;
                let mut r = &m[..];
                assert!(read_svc_frame(&mut r).is_err(), "flip {i} of {frame:?}");
            }
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_rejected() {
        assert!(matches!(decode_svc_payload(200, &[]), Err(WireError::BadKind(200))));
        let mut p = Vec::new();
        put_uvarint(&mut p, 1);
        p.push(0xfe); // trailing garbage after Progress { job }
        assert!(matches!(
            decode_svc_payload(KIND_PROGRESS, &p),
            Err(WireError::TrailingBytes)
        ));
    }
}
