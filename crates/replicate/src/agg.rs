//! Cross-run aggregation: mergeable log₂ histograms per scenario cell.
//!
//! Every run of a cell yields one `u64` per metric column; the
//! aggregate keeps a [`MergeHist`] per `(cell, column)` — the same
//! 65-bucket log₂ layout as the sim-obs metrics registry
//! ([`obs::bucket_index`]), so percentile resolution and exposition
//! match the live metrics. Histograms are *mergeable*: bucket-wise
//! addition is associative and commutative, which is what lets rows
//! stream in from any mix of local workers and remote ranks in any
//! order and still aggregate to bit-identical output.
//!
//! The determinism story: every column except [`WALL_COL`] is a pure
//! function of the run seed, so [`JobAggregate::digest`] (which skips
//! wall-clock columns) is bit-identical across repeat runs, thread
//! counts, and placements — the acceptance check `des-svc` and the
//! store reader both enforce.

use net::wire::{get_uvarint, put_uvarint, WireError};
use obs::{bucket_index, HistogramSnapshot, NUM_BUCKETS};

use crate::spec::JobSpec;

/// The per-run wall-clock column the executor appends to every cell.
/// The only non-deterministic column; excluded from [`JobAggregate::digest`].
pub const WALL_COL: &str = "wall_ns";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string (the workspace's standing digest).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A mergeable log₂ histogram over one metric column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeHist {
    /// Per-bucket counts, indexed like [`obs::bucket_index`].
    pub buckets: [u64; NUM_BUCKETS],
    /// Number of recorded values.
    pub count: u64,
    /// Wrapping sum of recorded values (checksum columns overflow a
    /// u64 by design; the mean is only meaningful for small-range
    /// columns and the wrap is identical on every replica).
    pub sum: u64,
}

impl Default for MergeHist {
    fn default() -> Self {
        MergeHist { buckets: [0; NUM_BUCKETS], count: 0, sum: 0 }
    }
}

impl MergeHist {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Bucket-wise merge — associative and commutative.
    pub fn merge(&mut self, other: &MergeHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// View as a sim-obs snapshot (for `mean`/`quantile`).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot { sum: self.sum, count: self.count, buckets: self.buckets.to_vec() }
    }

    /// Quantile upper bound (log₂-bucket resolution, within 2×).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.count);
        put_uvarint(out, self.sum);
        let nonzero = self.buckets.iter().filter(|&&c| c != 0).count() as u64;
        put_uvarint(out, nonzero);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                put_uvarint(out, i as u64);
                put_uvarint(out, c);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<MergeHist, WireError> {
        let count = get_uvarint(buf, pos)?;
        let sum = get_uvarint(buf, pos)?;
        let nonzero = get_uvarint(buf, pos)?;
        if nonzero > NUM_BUCKETS as u64 {
            return Err(WireError::BadValue);
        }
        let mut h = MergeHist { buckets: [0; NUM_BUCKETS], count, sum };
        let mut total = 0u64;
        let mut prev: Option<u64> = None;
        for _ in 0..nonzero {
            let ix = get_uvarint(buf, pos)?;
            if ix >= NUM_BUCKETS as u64 || prev.is_some_and(|p| ix <= p) {
                return Err(WireError::BadValue);
            }
            prev = Some(ix);
            let c = get_uvarint(buf, pos)?;
            if c == 0 {
                return Err(WireError::BadValue);
            }
            h.buckets[ix as usize] = c;
            total = total.checked_add(c).ok_or(WireError::Overflow)?;
        }
        if total != count {
            return Err(WireError::BadValue);
        }
        Ok(h)
    }
}

/// Aggregated histograms for one scenario cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellAgg {
    /// Cell label (from the spec).
    pub name: String,
    /// Column names, aligned with `hists`.
    pub columns: Vec<String>,
    /// One histogram per column.
    pub hists: Vec<MergeHist>,
}

impl CellAgg {
    /// Histogram of a named column, if present.
    pub fn column(&self, name: &str) -> Option<&MergeHist> {
        self.columns.iter().position(|c| c == name).map(|i| &self.hists[i])
    }
}

/// The cross-run aggregate of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobAggregate {
    /// Job label (from the spec).
    pub job_name: String,
    /// Digest of the spec these rows came from.
    pub spec_digest: u64,
    /// Rows folded in so far.
    pub total_runs: u64,
    /// One aggregate per scenario cell, in spec order.
    pub cells: Vec<CellAgg>,
}

impl JobAggregate {
    /// An empty aggregate shaped after `spec` (per-cell columns =
    /// deterministic metrics plus [`WALL_COL`]).
    pub fn for_spec(spec: &JobSpec) -> JobAggregate {
        let cells = spec
            .cells
            .iter()
            .map(|cell| {
                let mut columns: Vec<String> =
                    cell.workload.metric_names().iter().map(|s| s.to_string()).collect();
                columns.push(WALL_COL.to_string());
                let hists = vec![MergeHist::default(); columns.len()];
                CellAgg { name: cell.name.clone(), columns, hists }
            })
            .collect();
        JobAggregate {
            job_name: spec.name.clone(),
            spec_digest: spec.digest(),
            total_runs: 0,
            cells,
        }
    }

    /// Fold one run row (values aligned with the cell's columns).
    pub fn record_row(&mut self, cell: usize, values: &[u64]) {
        let c = &mut self.cells[cell];
        assert_eq!(values.len(), c.hists.len(), "row width mismatch");
        for (h, &v) in c.hists.iter_mut().zip(values) {
            h.record(v);
        }
        self.total_runs += 1;
    }

    /// Merge another aggregate of the same shape (associative).
    pub fn merge(&mut self, other: &JobAggregate) -> Result<(), WireError> {
        if self.spec_digest != other.spec_digest || self.cells.len() != other.cells.len() {
            return Err(WireError::BadValue);
        }
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            if a.columns != b.columns {
                return Err(WireError::BadValue);
            }
            for (ha, hb) in a.hists.iter_mut().zip(b.hists.iter()) {
                ha.merge(hb);
            }
        }
        self.total_runs += other.total_runs;
        Ok(())
    }

    /// FNV-1a digest over every *deterministic* column (skips
    /// [`WALL_COL`]): bit-identical across repeat runs of the same spec.
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, self.spec_digest);
        put_uvarint(&mut buf, self.cells.len() as u64);
        for cell in &self.cells {
            put_uvarint(&mut buf, cell.name.len() as u64);
            buf.extend_from_slice(cell.name.as_bytes());
            for (col, hist) in cell.columns.iter().zip(cell.hists.iter()) {
                if col == WALL_COL {
                    continue;
                }
                put_uvarint(&mut buf, col.len() as u64);
                buf.extend_from_slice(col.as_bytes());
                hist.encode(&mut buf);
            }
        }
        fnv1a(&buf)
    }

    /// Versioned payload encoding (embedded in `Results` frames).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.push(crate::spec::SPEC_VERSION);
        put_uvarint(&mut out, self.job_name.len() as u64);
        out.extend_from_slice(self.job_name.as_bytes());
        put_uvarint(&mut out, self.spec_digest);
        put_uvarint(&mut out, self.total_runs);
        put_uvarint(&mut out, self.cells.len() as u64);
        for cell in &self.cells {
            put_uvarint(&mut out, cell.name.len() as u64);
            out.extend_from_slice(cell.name.as_bytes());
            put_uvarint(&mut out, cell.columns.len() as u64);
            for (col, hist) in cell.columns.iter().zip(cell.hists.iter()) {
                put_uvarint(&mut out, col.len() as u64);
                out.extend_from_slice(col.as_bytes());
                hist.encode(&mut out);
            }
        }
        out
    }

    /// Total decoder: consumes exactly `buf` or errors.
    pub fn decode(buf: &[u8]) -> Result<JobAggregate, WireError> {
        let mut pos = 0;
        let agg = Self::decode_at(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(agg)
    }

    /// Decode one aggregate from `buf` at `pos`.
    pub fn decode_at(buf: &[u8], pos: &mut usize) -> Result<JobAggregate, WireError> {
        let version = net::wire::get_u8(buf, pos)?;
        if version != crate::spec::SPEC_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let job_name = small_string(buf, pos)?;
        let spec_digest = get_uvarint(buf, pos)?;
        let total_runs = get_uvarint(buf, pos)?;
        let num_cells = get_uvarint(buf, pos)?;
        if num_cells > crate::spec::MAX_CELLS as u64 {
            return Err(WireError::BadValue);
        }
        let mut cells = Vec::with_capacity(num_cells as usize);
        for _ in 0..num_cells {
            let name = small_string(buf, pos)?;
            let num_cols = get_uvarint(buf, pos)?;
            if num_cols > 64 {
                return Err(WireError::BadValue);
            }
            let mut columns = Vec::with_capacity(num_cols as usize);
            let mut hists = Vec::with_capacity(num_cols as usize);
            for _ in 0..num_cols {
                columns.push(small_string(buf, pos)?);
                hists.push(MergeHist::decode(buf, pos)?);
            }
            cells.push(CellAgg { name, columns, hists });
        }
        Ok(JobAggregate { job_name, spec_digest, total_runs, cells })
    }

    /// `(cell, column, count, mean, p50, p95, p99)` rows for reports.
    pub fn percentile_rows(&self) -> Vec<(String, String, u64, u64, u64, u64, u64)> {
        let mut rows = Vec::new();
        for cell in &self.cells {
            for (col, hist) in cell.columns.iter().zip(cell.hists.iter()) {
                rows.push((
                    cell.name.clone(),
                    col.clone(),
                    hist.count,
                    hist.snapshot().mean(),
                    hist.quantile(0.50),
                    hist.quantile(0.95),
                    hist.quantile(0.99),
                ));
            }
        }
        rows
    }
}

fn small_string(buf: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = get_uvarint(buf, pos)? as usize;
    if len > crate::spec::MAX_NAME_LEN {
        return Err(WireError::BadValue);
    }
    let end = pos.checked_add(len).ok_or(WireError::Overflow)?;
    if end > buf.len() {
        return Err(WireError::Truncated);
    }
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| WireError::BadValue)?;
    *pos = end;
    Ok(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::splitmix64;

    fn hist_of(values: &[u64]) -> MergeHist {
        let mut h = MergeHist::default();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = hist_of(&[1, 2, 3, 1000, u64::MAX]);
        let b = hist_of(&[0, 7, 7, 7]);
        let c = hist_of(&[1 << 40, 12]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // a ⊕ b == b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab2 = a.clone();
        ab2.merge(&b);
        assert_eq!(ab2, ba);

        // merged == recorded-in-one-pass
        let all = hist_of(&[1, 2, 3, 1000, u64::MAX, 0, 7, 7, 7]);
        assert_eq!(ab, all);
    }

    #[test]
    fn merge_matches_any_partition_of_a_stream() {
        // Split one pseudo-random value stream at every point: the
        // merged halves must equal the single-pass histogram.
        let values: Vec<u64> = (0..64u64).map(|i| splitmix64(i) >> (i % 50)).collect();
        let whole = hist_of(&values);
        for cut in 0..values.len() {
            let mut left = hist_of(&values[..cut]);
            left.merge(&hist_of(&values[cut..]));
            assert_eq!(left, whole, "partition at {cut}");
        }
    }

    #[test]
    fn quantiles_come_from_obs_buckets() {
        let mut h = MergeHist::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count, 100);
        // p50 of 1..=100 lands in the bucket containing 50 → upper bound 63.
        assert_eq!(h.quantile(0.5), obs::bucket_upper_bound(bucket_index(50)));
        assert!(h.quantile(0.99) >= 99);
    }

    #[test]
    fn aggregate_round_trips_and_digest_skips_wall() {
        let spec = crate::spec::tests::sample_spec();
        let mut agg = JobAggregate::for_spec(&spec);
        let width = agg.cells[0].hists.len();
        agg.record_row(0, &vec![5; width]);
        agg.record_row(0, &vec![9; width]);

        let bytes = agg.encode();
        let back = JobAggregate::decode(&bytes).expect("round trip");
        assert_eq!(back, agg);

        // Same deterministic columns, different wall → same digest.
        let mut other = JobAggregate::for_spec(&spec);
        let mut row = vec![5u64; width];
        *row.last_mut().unwrap() = 777; // wall_ns differs
        other.record_row(0, &row);
        let mut row2 = vec![9u64; width];
        *row2.last_mut().unwrap() = 1; // wall_ns differs
        other.record_row(0, &row2);
        assert_eq!(other.digest(), agg.digest());

        // A deterministic column differing → different digest.
        let mut third = JobAggregate::for_spec(&spec);
        third.record_row(0, &vec![5; width]);
        third.record_row(0, &vec![10; width]);
        assert_ne!(third.digest(), agg.digest());
    }

    #[test]
    fn aggregate_decoder_is_total() {
        let spec = crate::spec::tests::sample_spec();
        let mut agg = JobAggregate::for_spec(&spec);
        let width = agg.cells[1].hists.len();
        agg.record_row(1, &vec![123; width]);
        let bytes = agg.encode();
        for cut in 0..bytes.len() {
            assert!(JobAggregate::decode(&bytes[..cut]).is_err());
        }
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x40;
            let _ = JobAggregate::decode(&m); // must never panic
        }
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let spec = crate::spec::tests::sample_spec();
        let mut a = JobAggregate::for_spec(&spec);
        let mut b = JobAggregate::for_spec(&spec);
        b.spec_digest ^= 1;
        assert!(a.merge(&b).is_err());
    }
}
