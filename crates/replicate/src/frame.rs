//! Generic length-prefixed CRC frames, shared by the column store and
//! the job protocol.
//!
//! Same discipline as `net::wire`: an 8-byte header (`magic:u16 le`,
//! `version:u8`, `kind:u8`, `len:u32 le`), the payload, and a CRC32
//! trailer over header+payload. Each consumer supplies its own magic
//! and version so a store file can never be misread as a protocol
//! stream (or vice versa). Decoding is total — every malformed input
//! maps to a [`WireError`], never a panic or an unbounded allocation.

use net::wire::{crc32, WireError, HEADER_LEN, TRAILER_LEN};

/// Frames larger than this are rejected before any allocation.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// Encode one frame.
pub fn encode(magic: u16, version: u8, kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_PAYLOAD, "frame payload too large");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    buf.extend_from_slice(&magic.to_le_bytes());
    buf.push(version);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn read_full(
    r: &mut impl std::io::Read,
    buf: &mut [u8],
    allow_eof_at_start: bool,
) -> Result<bool, WireError> {
    let mut read = 0;
    while read < buf.len() {
        match r.read(&mut buf[read..]) {
            Ok(0) => {
                if read == 0 && allow_eof_at_start {
                    return Ok(false);
                }
                return Err(WireError::Truncated);
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    Ok(true)
}

/// Read one `(kind, payload)` frame from a blocking reader. `Ok(None)`
/// is a clean EOF at a frame boundary; EOF inside a frame is
/// [`WireError::Truncated`].
pub fn read(
    magic: u16,
    version: u8,
    r: &mut impl std::io::Read,
) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header, true)? {
        return Ok(None);
    }
    let found_magic = u16::from_le_bytes([header[0], header[1]]);
    if found_magic != magic {
        return Err(WireError::BadMagic(found_magic));
    }
    if header[2] != version {
        return Err(WireError::BadVersion(header[2]));
    }
    let kind = header[3];
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let mut rest = vec![0u8; len + TRAILER_LEN];
    read_full(r, &mut rest, false)?;
    let found = u32::from_le_bytes([rest[len], rest[len + 1], rest[len + 2], rest[len + 3]]);
    let mut whole = header.to_vec();
    whole.extend_from_slice(&rest[..len]);
    let expected = crc32(&whole);
    if found != expected {
        return Err(WireError::BadChecksum { expected, found });
    }
    rest.truncate(len);
    Ok(Some((kind, rest)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: u16 = 0x5C01;
    const V: u8 = 1;

    #[test]
    fn frame_round_trips() {
        let bytes = encode(M, V, 3, b"hello columns");
        let mut r = &bytes[..];
        let (kind, payload) = read(M, V, &mut r).unwrap().expect("one frame");
        assert_eq!(kind, 3);
        assert_eq!(payload, b"hello columns");
        assert!(read(M, V, &mut r).unwrap().is_none(), "clean EOF after");
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = encode(M, V, 1, b"payload bytes");
        for cut in 1..bytes.len() {
            let mut r = &bytes[..cut];
            assert!(read(M, V, &mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_bit_flip_is_caught() {
        let bytes = encode(M, V, 1, b"abcdef");
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                let mut r = &m[..];
                assert!(read(M, V, &mut r).is_err(), "flip byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn wrong_magic_or_version_rejected() {
        let bytes = encode(M, V, 1, b"x");
        let mut r = &bytes[..];
        assert!(matches!(read(0x1111, V, &mut r), Err(WireError::BadMagic(_))));
        let mut r = &bytes[..];
        assert!(matches!(read(M, V + 1, &mut r), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut bytes = encode(M, V, 1, b"x");
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &bytes[..];
        assert!(matches!(read(M, V, &mut r), Err(WireError::TooLarge(_))));
    }
}
