//! End-to-end tests of the `des-svc` replication service: a seeded
//! PHOLD sweep over real TCP, progress via the Prometheus endpoint,
//! the columnar store re-validated from disk, and the DESIGN.md §14
//! determinism contract (same spec ⇒ bit-identical aggregate digest,
//! whatever the thread count or worker placement).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use des::{EngineConfig, ObsConfig, Recorder};
use model::phold::PholdConfig;
use obs::prometheus::MetricsServer;
use replicate::service::{worker_attach, Service, SvcClient, SvcConfig, SvcError};
use replicate::spec::JobSpec;
use replicate::store::RunStoreReader;
use replicate::{run_sweep, JobState};

/// The acceptance sweep: 2 lookahead cells × 100 reps = 200 runs.
fn sweep_spec() -> JobSpec {
    let base = PholdConfig {
        lps: 4,
        population: 1,
        lookahead: 4,
        remote_fraction: 0.5,
        mean_delay: 6.0,
    };
    JobSpec::phold_sweep("e2e", base, &[2, 6], 42, 100, 150)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sim-replicate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    dir
}

/// Raw HTTP scrape of a MetricsServer, no client library.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect metrics");
    conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n").expect("send scrape");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read scrape");
    let (_headers, body) = response.split_once("\r\n\r\n").expect("http body");
    body.to_string()
}

#[test]
fn service_runs_a_200_rep_sweep_over_tcp_with_store_and_metrics() {
    let spec = sweep_spec();
    assert_eq!(spec.total_runs(), 200);
    let store = tmp_dir("e2e");
    let recorder = Recorder::new(&ObsConfig::enabled());
    let service = Service::start(SvcConfig {
        listen: "127.0.0.1:0".into(),
        threads: 2,
        store_dir: Some(store.clone()),
        cfg: EngineConfig::default().with_recorder(recorder.clone()),
    })
    .expect("start service");
    let metrics = MetricsServer::serve("127.0.0.1:0", recorder).expect("metrics server");

    let mut client = SvcClient::connect(service.addr()).expect("connect");
    let job = client.submit(&spec).expect("submit");
    let info = client.wait_done(job, Duration::from_secs(120)).expect("wait");
    assert_eq!(info.state, JobState::Done);
    assert_eq!(info.completed, 200);
    assert_eq!(info.total, 200);
    let agg = client.fetch(job).expect("fetch");
    assert_eq!(agg.total_runs, 200);
    assert_eq!(agg.spec_digest, spec.digest());

    // Progress + queue metrics are live on the Prometheus endpoint and
    // the exposition passes the in-tree lint.
    let body = scrape(metrics.local_addr());
    obs::prometheus::lint(&body).expect("exposition lints clean");
    assert!(body.contains("sim_svc_jobs_submitted_total 1"), "submitted counter:\n{body}");
    assert!(body.contains("sim_svc_jobs_completed_total 1"), "completed counter:\n{body}");
    assert!(
        body.contains(&format!("sim_svc_job_completed_runs{{job=\"{job}\"}} 200")),
        "per-job progress gauge:\n{body}"
    );
    assert!(body.contains("sim_svc_runs_total 200"), "runs counter:\n{body}");

    // The columnar store re-reads with CRC validation to the exact
    // digest the service reported.
    let files = replicate::store::list_store_files(&store).expect("list store");
    assert_eq!(files.len(), 1, "one sealed store file");
    let reader = RunStoreReader::open(&files[0]).expect("re-read store");
    assert_eq!(reader.spec.digest(), spec.digest());
    assert_eq!(reader.aggregate.digest(), agg.digest());

    // Determinism contract: an in-process rerun of the same spec on a
    // different thread count aggregates to the same digest, same
    // percentile table.
    let local = run_sweep(&spec, 1, &EngineConfig::default()).expect("local sweep");
    assert_eq!(local.agg.digest(), agg.digest());
    let svc_rows: Vec<_> = agg
        .percentile_rows()
        .into_iter()
        .filter(|(_, col, ..)| col != replicate::WALL_COL)
        .collect();
    let local_rows: Vec<_> = local
        .agg
        .percentile_rows()
        .into_iter()
        .filter(|(_, col, ..)| col != replicate::WALL_COL)
        .collect();
    assert_eq!(svc_rows, local_rows, "p50/p95/p99 identical across placements");

    service.stop();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn remote_worker_rank_produces_the_same_digest() {
    let spec = sweep_spec();
    let service = Service::start(SvcConfig {
        listen: "127.0.0.1:0".into(),
        threads: 1,
        store_dir: None,
        cfg: EngineConfig::default(),
    })
    .expect("start service");
    let worker = worker_attach(service.addr(), 2, EngineConfig::default()).expect("attach");

    let mut client = SvcClient::connect(service.addr()).expect("connect");
    let job = client.submit(&spec).expect("submit");
    let info = client.wait_done(job, Duration::from_secs(120)).expect("wait");
    assert_eq!(info.state, JobState::Done);
    let agg = client.fetch(job).expect("fetch");

    let local = run_sweep(&spec, 2, &EngineConfig::default()).expect("local sweep");
    assert_eq!(
        agg.digest(),
        local.agg.digest(),
        "splitting runs across a remote rank must not change the aggregate"
    );

    service.stop();
    worker.join();
}

#[test]
fn repeat_submissions_are_bit_identical() {
    let spec = sweep_spec();
    let service = Service::start(SvcConfig {
        listen: "127.0.0.1:0".into(),
        threads: 2,
        store_dir: None,
        cfg: EngineConfig::default(),
    })
    .expect("start service");
    let mut client = SvcClient::connect(service.addr()).expect("connect");
    let first = client.submit(&spec).expect("submit 1");
    let second = client.submit(&spec).expect("submit 2");
    assert_ne!(first, second);
    client.wait_done(second, Duration::from_secs(240)).expect("wait");
    let a = client.fetch(first).expect("fetch 1");
    let b = client.fetch(second).expect("fetch 2");
    assert_eq!(a.digest(), b.digest());
    // Full encoded aggregates match except the wall-clock columns, so
    // compare the digest-covered views byte for byte via percentiles.
    let strip = |agg: &replicate::JobAggregate| {
        agg.percentile_rows()
            .into_iter()
            .filter(|(_, col, ..)| col != replicate::WALL_COL)
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&a), strip(&b));
    service.stop();
}

#[test]
fn bad_requests_are_rejected_not_dropped() {
    let service = Service::start(SvcConfig::default()).expect("start service");
    let mut client = SvcClient::connect(service.addr()).expect("connect");
    match client.fetch(77) {
        Err(SvcError::Rejected(reason)) => assert!(reason.contains("unknown"), "{reason}"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    // The connection survives a rejection.
    match client.progress(77) {
        Err(SvcError::Rejected(_)) => {}
        other => panic!("expected Rejected, got {other:?}"),
    }
    service.stop();
}

/// Reserve a free TCP port. Racy in principle; fine for a test that
/// binds it again immediately.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0").expect("probe port").local_addr().unwrap().port()
}

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn des_svc_binary_serves_submits_and_fetches() {
    let bin = env!("CARGO_BIN_EXE_des-svc");
    let port = free_port();
    let addr = format!("127.0.0.1:{port}");
    let server = KillOnDrop(
        Command::new(bin)
            .args(["serve", "--listen", &addr, "--threads", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve"),
    );
    // Wait for the listener to come up.
    let mut up = false;
    for _ in 0..100 {
        if TcpStream::connect(&addr).is_ok() {
            up = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(up, "serve never bound {addr}");

    let run = |args: &[&str]| -> (bool, String) {
        let out = Command::new(bin).args(args).output().expect("run des-svc");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.success(), text)
    };

    let (ok, submit_out) = run(&[
        "submit", "--to", &addr, "--reps", "25", "--sweep-lookahead", "2,4", "--lps", "4",
        "--population", "1", "--horizon", "120",
    ]);
    assert!(ok, "submit failed: {submit_out}");
    assert!(submit_out.contains("job=1 total=50"), "{submit_out}");

    let mut done = false;
    for _ in 0..600 {
        let (ok, progress_out) = run(&["progress", "--to", &addr, "--job", "1"]);
        assert!(ok, "progress failed: {progress_out}");
        if progress_out.contains("state=done") {
            assert!(progress_out.contains("completed=50 total=50"), "{progress_out}");
            done = true;
            break;
        }
        assert!(!progress_out.contains("state=failed"), "{progress_out}");
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(done, "job never reached state=done");

    let (ok, fetch_out) = run(&["fetch", "--to", &addr, "--job", "1"]);
    assert!(ok, "fetch failed: {fetch_out}");
    assert!(fetch_out.contains("runs=50 digest=0x"), "{fetch_out}");
    assert!(fetch_out.contains("la=2"), "{fetch_out}");
    assert!(fetch_out.contains("wall_ns"), "{fetch_out}");

    let (ok, out) = run(&["shutdown", "--to", &addr]);
    assert!(ok, "shutdown failed: {out}");
    drop(server);
}
