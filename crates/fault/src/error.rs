//! Structured failure values for the fallible engine API.

use std::fmt;
use std::time::Duration;

/// Per-worker diagnostic state captured when a stall is detected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerSnapshot {
    /// Worker index (or logical-process id for the pdes kernel).
    pub id: usize,
    /// Free-form state description, e.g. `"parked"` or `"retrying node 12"`.
    pub state: String,
    /// Depth of this worker's local queue, if it has one.
    pub queue_depth: Option<usize>,
    /// Core this worker's thread is pinned to (`None` when unpinned), so
    /// wedge diagnostics attribute stalls to the right socket.
    pub pinned_core: Option<usize>,
    /// Live events in this worker's event arena, if it owns one.
    pub arena_live: Option<usize>,
}

/// Per-transport-link diagnostic state captured when a stall is detected
/// (distributed engines only; in-process fabrics report no links).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Peer process id this link connects to.
    pub peer: usize,
    /// Messages coalesced in outbound batches, not yet framed.
    pub outbox_msgs: usize,
    /// Bytes queued toward the wire (coalesced + framed, unwritten).
    pub outbox_bytes: usize,
    /// Encoded frames sitting in the writer queue.
    pub inflight_frames: usize,
}

impl fmt::Display for LinkSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "link ->{}: outbox {} msgs / {} bytes, {} frames in flight",
            self.peer, self.outbox_msgs, self.outbox_bytes, self.inflight_frames
        )
    }
}

/// Diagnostic snapshot of a run that stopped making progress.
///
/// Captured by the [`Watchdog`](crate::Watchdog) at the moment it trips, so
/// the numbers describe the wedged state, not the state after teardown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StallSnapshot {
    /// Engine or kernel that stalled.
    pub engine: String,
    /// Wall-clock time since the last observed progress tick.
    pub stalled_for: Duration,
    /// Value of the progress counter when the watchdog tripped.
    pub progress_ticks: u64,
    /// Per-worker states at the moment of the stall.
    pub workers: Vec<WorkerSnapshot>,
    /// Lock ids still held according to the lock registry.
    pub held_locks: Vec<usize>,
    /// Depths of the shared queues (injector, per-channel, ...).
    pub queue_depths: Vec<usize>,
    /// Per-peer transport link depths (distributed engines only).
    pub links: Vec<LinkSnapshot>,
    /// Number of items in the global workset, if the engine has one.
    pub workset_size: usize,
    /// Anything else the engine wants on the record.
    pub notes: Vec<String>,
    /// Last trace records per registered thread at the moment of the
    /// stall (empty when the run's observability recorder is off).
    pub traces: Vec<obs::ThreadTraceDump>,
    /// Blocked-on-NULL wait totals per (waiting shard, awaited peer
    /// shard), worst first — "who stalled whom" at the moment of the
    /// stall. Empty on engines without NULL-wait accounting.
    pub null_waits: Vec<NullWaitEntry>,
}

/// One cell of the blocked-on-NULL wait matrix: how long `waiter_shard`
/// sat idle attributable to missing clock promises from `peer_shard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NullWaitEntry {
    /// Shard that sat waiting.
    pub waiter_shard: usize,
    /// Shard whose NULL promise it was waiting on.
    pub peer_shard: usize,
    /// Total nanoseconds of attributed wait.
    pub wait_ns: u64,
}

impl fmt::Display for NullWaitEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} blocked {:.3} ms on NULLs from shard {}",
            self.waiter_shard,
            self.wait_ns as f64 / 1e6,
            self.peer_shard
        )
    }
}

impl fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine '{}' made no progress for {:?} (progress_ticks={})",
            self.engine, self.stalled_for, self.progress_ticks
        )?;
        writeln!(
            f,
            "  workset_size={} queue_depths={:?} held_locks={:?}",
            self.workset_size, self.queue_depths, self.held_locks
        )?;
        for w in &self.workers {
            write!(f, "  worker {}: {}", w.id, w.state)?;
            if let Some(d) = w.queue_depth {
                write!(f, " (queue depth {d})")?;
            }
            if let Some(c) = w.pinned_core {
                write!(f, " [core {c}]")?;
            }
            if let Some(n) = w.arena_live {
                write!(f, " [arena {n} live]")?;
            }
            writeln!(f)?;
        }
        for link in &self.links {
            writeln!(f, "  {link}")?;
        }
        for wait in &self.null_waits {
            writeln!(f, "  {wait}")?;
        }
        if let Some(top) = self.null_waits.first() {
            writeln!(
                f,
                "  => straggler: shard {} (stalled shard {} longest)",
                top.peer_shard, top.waiter_shard
            )?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        for dump in &self.traces {
            write!(
                f,
                "  trace {} ({} records, {} pushed):",
                dump.thread,
                dump.records.len(),
                dump.pushed
            )?;
            // The last few records are what explain a wedge; the full
            // dump stays available on the snapshot value itself.
            for rec in dump.last(4) {
                let kind = rec
                    .span_kind()
                    .map(|k| k.label())
                    .unwrap_or("torn_record");
                write!(f, " {kind}(a={},b={})@{}ns", rec.a, rec.b, rec.ts_ns)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Which side of a transport link a failure was observed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    /// Failure reading from the peer (its writer died or the socket EOF'd).
    Inbound,
    /// Failure writing toward the peer (its reader died or the send stalled).
    Outbound,
}

impl fmt::Display for LinkDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkDirection::Inbound => write!(f, "inbound"),
            LinkDirection::Outbound => write!(f, "outbound"),
        }
    }
}

/// Structured error returned by `Engine::try_run` and the pdes kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A simulation task panicked. The engine caught the panic at the task
    /// boundary, drained the run, and released all locks before returning.
    TaskPanicked {
        /// Node the task was simulating, when the engine knows it.
        node: Option<usize>,
        /// Stringified panic payload.
        payload: String,
    },
    /// The run stopped making progress and the watchdog aborted it.
    NoProgress {
        /// Diagnostics captured at the moment the watchdog tripped.
        snapshot: Box<StallSnapshot>,
    },
    /// An internal invariant did not hold (e.g. a queue's head mirror said
    /// non-empty but the queue was empty).
    InvariantViolation {
        /// Where and what: enough to locate the broken invariant.
        context: String,
    },
    /// A configuration value was rejected before the run started (e.g. a
    /// pin policy naming cores the machine does not have, or a malformed
    /// des-node config key). Nothing was spawned when this is returned.
    Config {
        /// Which knob was rejected and why.
        context: String,
    },
    /// A transport link failed: a peer process disconnected mid-run, a
    /// wire frame failed to decode, or the termination handshake timed
    /// out. Distributed engines return this instead of hanging.
    Transport {
        /// Peer process id, when the failure is attributable to one.
        peer: Option<usize>,
        /// Which side of the link observed the failure, when known.
        direction: Option<LinkDirection>,
        /// Last barrier epoch this rank had completed when the link died
        /// (`None` when the failure predates the first epoch, or the
        /// engine has no epoch machinery running).
        epoch: Option<u64>,
        /// What happened on the link.
        context: String,
    },
}

impl SimError {
    /// Convenience constructor used at former `expect(...)` sites.
    pub fn invariant(context: impl Into<String>) -> Self {
        SimError::InvariantViolation {
            context: context.into(),
        }
    }

    /// Convenience constructor for rejected configuration values.
    pub fn config(context: impl Into<String>) -> Self {
        SimError::Config {
            context: context.into(),
        }
    }

    /// Convenience constructor for transport failures with no link
    /// attribution (setup-time errors, listener binds, handshake I/O).
    pub fn transport(peer: Option<usize>, context: impl Into<String>) -> Self {
        SimError::Transport {
            peer,
            direction: None,
            epoch: None,
            context: context.into(),
        }
    }

    /// Turn a payload from `catch_unwind` into a `TaskPanicked` error.
    pub fn from_panic(node: Option<usize>, payload: &(dyn std::any::Any + Send)) -> Self {
        let text = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        SimError::TaskPanicked {
            node,
            payload: text,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TaskPanicked { node, payload } => match node {
                Some(n) => write!(f, "simulation task for node {n} panicked: {payload}"),
                None => write!(f, "simulation task panicked: {payload}"),
            },
            SimError::NoProgress { snapshot } => {
                write!(f, "no progress: {snapshot}")
            }
            SimError::InvariantViolation { context } => {
                write!(f, "invariant violation: {context}")
            }
            SimError::Config { context } => {
                write!(f, "invalid configuration: {context}")
            }
            SimError::Transport {
                peer,
                direction,
                epoch,
                context,
            } => {
                write!(f, "transport failure")?;
                if let Some(p) = peer {
                    write!(f, " (peer {p}")?;
                    if let Some(d) = direction {
                        write!(f, ", {d}")?;
                    }
                    if let Some(e) = epoch {
                        write!(f, ", last epoch {e}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, ": {context}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::TaskPanicked {
            node: Some(7),
            payload: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("node 7") && s.contains("boom"), "{s}");

        let e = SimError::invariant("hj.pump: head mirror desync at node 3");
        assert!(e.to_string().contains("head mirror desync"), "{e}");

        let e = SimError::config("pin: core 9 requested but only 4 cores online");
        let s = e.to_string();
        assert!(s.contains("invalid configuration") && s.contains("core 9"), "{s}");
    }

    #[test]
    fn transport_display_carries_link_context() {
        let e = SimError::Transport {
            peer: Some(2),
            direction: Some(LinkDirection::Inbound),
            epoch: Some(7),
            context: "peer closed connection mid-run".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("peer 2") && s.contains("inbound") && s.contains("last epoch 7"),
            "{s}"
        );
        // The no-attribution constructor still renders cleanly.
        let s = SimError::transport(None, "listener bind failed").to_string();
        assert!(s.contains("transport failure: listener bind failed"), "{s}");
    }

    #[test]
    fn from_panic_extracts_str_and_string() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static boom");
        match SimError::from_panic(None, p.as_ref()) {
            SimError::TaskPanicked { payload, .. } => assert_eq!(payload, "static boom"),
            other => panic!("wrong variant: {other:?}"),
        }
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned boom"));
        match SimError::from_panic(Some(1), p.as_ref()) {
            SimError::TaskPanicked { node, payload } => {
                assert_eq!(node, Some(1));
                assert_eq!(payload, "owned boom");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn stall_snapshot_display_lists_workers() {
        let snap = StallSnapshot {
            engine: "hj".into(),
            stalled_for: Duration::from_millis(250),
            progress_ticks: 42,
            workers: vec![WorkerSnapshot {
                id: 0,
                state: "parked".into(),
                queue_depth: Some(3),
                pinned_core: Some(2),
                arena_live: Some(17),
            }],
            held_locks: vec![5],
            queue_depths: vec![1, 0],
            links: vec![LinkSnapshot {
                peer: 1,
                outbox_msgs: 2,
                outbox_bytes: 64,
                inflight_frames: 1,
            }],
            workset_size: 4,
            notes: vec!["wedge injected".into()],
            traces: vec![obs::ThreadTraceDump {
                thread: "shard-0".into(),
                tid: 1,
                pushed: 9,
                records: vec![obs::TraceRecord {
                    ts_ns: 1234,
                    kind: obs::SpanKind::MailboxStall as u8,
                    phase: obs::Phase::Instant as u8,
                    a: 2,
                    b: 0,
                    dur_ns: 0,
                }],
            }],
            null_waits: vec![NullWaitEntry {
                waiter_shard: 0,
                peer_shard: 1,
                wait_ns: 2_500_000,
            }],
        };
        let text = snap.to_string();
        assert!(text.contains("hj") && text.contains("parked") && text.contains("wedge"));
        assert!(text.contains("[core 2]") && text.contains("[arena 17 live]"), "{text}");
        assert!(text.contains("link ->1") && text.contains("64 bytes"), "{text}");
        assert!(
            text.contains("trace shard-0") && text.contains("mailbox_stall(a=2,b=0)@1234ns"),
            "{text}"
        );
        assert!(
            text.contains("shard 0 blocked 2.500 ms on NULLs from shard 1")
                && text.contains("=> straggler: shard 1"),
            "{text}"
        );
    }
}
