//! Deterministic fault injection and failure semantics for the simulator.
//!
//! This crate is the robustness backbone shared by every engine in the
//! workspace:
//!
//! * [`FaultPlan`] — a seeded, counter-based description of which faults to
//!   inject into a run (task panics, forced `try_lock` failures, straggler
//!   delays, forced Galois conflicts, a deliberate wedge). Decisions are
//!   pure functions of `(seed, decision counter)`, so a plan replayed with
//!   the same seed injects the same number of faults at the same decision
//!   indices regardless of thread interleaving.
//! * [`SimError`] — the structured error type returned by the fallible
//!   engine API (`Engine::try_run`). Engines translate task panics, stalls
//!   and broken invariants into these variants instead of aborting the
//!   process or hanging.
//! * [`RunCtl`] — shared per-run control block: a progress counter fed by
//!   workers, a cooperative cancellation flag checked in engine task
//!   loops, and a first-error slot.
//! * [`Watchdog`] — a monitor thread that trips when the progress counter
//!   stops advancing for longer than a deadline, captures a
//!   [`StallSnapshot`] and cancels the run so `try_run` can return
//!   [`SimError::NoProgress`] instead of hanging forever.

mod ctl;
mod error;
mod plan;
mod policy;
mod watchdog;

pub use ctl::RunCtl;
pub use error::{LinkDirection, LinkSnapshot, NullWaitEntry, SimError, StallSnapshot, WorkerSnapshot};
pub use plan::{FaultKind, FaultPlan, InjectionCounts};
pub use policy::{RunPolicy, DEFAULT_WATCHDOG};
pub use watchdog::Watchdog;
