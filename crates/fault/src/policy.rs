//! Shared per-engine run policy: fault plan + watchdog deadline.
//!
//! Every fallible engine carries the same two knobs — an injected
//! [`FaultPlan`] and a no-progress watchdog deadline — and previously
//! each engine hand-rolled the same pair of fields and
//! `with_fault_plan`/`with_watchdog` builder methods. [`RunPolicy`]
//! is that pair, deduplicated, with the workspace-wide default
//! deadline in one place.

use std::sync::Arc;
use std::time::Duration;

use crate::FaultPlan;

/// Default no-progress deadline for every engine's watchdog. Generous
/// enough that a legitimately slow run never trips it; tests shrink it.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(10);

/// The fault plan and watchdog deadline governing one engine value.
#[derive(Debug, Clone)]
pub struct RunPolicy {
    fault: Arc<FaultPlan>,
    watchdog: Option<Duration>,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            fault: Arc::new(FaultPlan::none()),
            watchdog: Some(DEFAULT_WATCHDOG),
        }
    }
}

impl RunPolicy {
    /// A policy with no injected faults and the default watchdog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Arc::new(plan);
        self
    }

    /// Share an existing (possibly already counting) fault plan.
    pub fn with_shared_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = plan;
        self
    }

    /// Replace the watchdog deadline (`None` disables the watchdog).
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.watchdog = deadline;
        self
    }

    /// The fault plan, for cloning into worker threads.
    pub fn fault(&self) -> &Arc<FaultPlan> {
        &self.fault
    }

    /// The watchdog deadline, if armed.
    pub fn watchdog(&self) -> Option<Duration> {
        self.watchdog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_clean_with_watchdog() {
        let p = RunPolicy::default();
        assert!(!p.fault().is_active());
        assert_eq!(p.watchdog(), Some(DEFAULT_WATCHDOG));
    }

    #[test]
    fn builders_replace_both_knobs() {
        let p = RunPolicy::new()
            .with_fault_plan(FaultPlan::seeded(7).wedged())
            .with_watchdog(Some(Duration::from_millis(50)));
        assert!(p.fault().is_wedged());
        assert_eq!(p.watchdog(), Some(Duration::from_millis(50)));
        let p = p.with_watchdog(None);
        assert_eq!(p.watchdog(), None);
    }

    #[test]
    fn clones_share_the_fault_plan() {
        let p = RunPolicy::new().with_fault_plan(FaultPlan::seeded(1).panic_on_spawn(1));
        let q = p.clone();
        assert!(q.fault().should_panic_spawn());
        // Same underlying counters: the clone's draw consumed the index.
        assert!(!p.fault().should_panic_spawn());
        assert_eq!(p.fault().injected().panics, 1);
    }
}
