//! Shared per-engine run policy: fault plan + watchdog deadline +
//! observability recorder.
//!
//! Every fallible engine carries the same knobs — an injected
//! [`FaultPlan`], a no-progress watchdog deadline, and (since the
//! sim-obs layer) an [`obs::Recorder`] — and previously each engine
//! hand-rolled the same fields and `with_fault_plan`/`with_watchdog`
//! builder methods. [`RunPolicy`] is that bundle, deduplicated, with
//! the workspace-wide default deadline in one place. The default
//! recorder is disabled ([`obs::Recorder::off`]), so an engine built
//! without observability pays a single branch per instrumentation
//! point and zero allocations.

use std::sync::Arc;
use std::time::Duration;

use obs::{ObsConfig, Recorder};

use crate::FaultPlan;

/// Default no-progress deadline for every engine's watchdog. Generous
/// enough that a legitimately slow run never trips it; tests shrink it.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(10);

/// The fault plan and watchdog deadline governing one engine value.
#[derive(Debug, Clone)]
pub struct RunPolicy {
    fault: Arc<FaultPlan>,
    watchdog: Option<Duration>,
    recorder: Recorder,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            fault: Arc::new(FaultPlan::none()),
            watchdog: Some(DEFAULT_WATCHDOG),
            recorder: Recorder::off(),
        }
    }
}

impl RunPolicy {
    /// A policy with no injected faults and the default watchdog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Arc::new(plan);
        self
    }

    /// Share an existing (possibly already counting) fault plan.
    pub fn with_shared_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = plan;
        self
    }

    /// Replace the watchdog deadline (`None` disables the watchdog).
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.watchdog = deadline;
        self
    }

    /// Build and install a recorder from an observability config
    /// (disabled config ⇒ the no-op recorder).
    pub fn with_obs(mut self, cfg: &ObsConfig) -> Self {
        self.recorder = Recorder::new(cfg);
        self
    }

    /// Share an existing recorder (e.g. so a harness keeps a handle to
    /// read metrics and traces after the run).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The fault plan, for cloning into worker threads.
    pub fn fault(&self) -> &Arc<FaultPlan> {
        &self.fault
    }

    /// The watchdog deadline, if armed.
    pub fn watchdog(&self) -> Option<Duration> {
        self.watchdog
    }

    /// The observability recorder (disabled unless configured).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_clean_with_watchdog() {
        let p = RunPolicy::default();
        assert!(!p.fault().is_active());
        assert_eq!(p.watchdog(), Some(DEFAULT_WATCHDOG));
        assert!(!p.recorder().is_enabled());
    }

    #[test]
    fn obs_config_installs_a_live_recorder_clones_share_it() {
        let p = RunPolicy::new().with_obs(&ObsConfig::enabled());
        assert!(p.recorder().is_enabled());
        let q = p.clone();
        q.recorder().counter("sim_test_total", &[]).add(5);
        assert_eq!(p.recorder().counter("sim_test_total", &[]).get(), 5);
        let off = p.with_obs(&ObsConfig::disabled());
        assert!(!off.recorder().is_enabled());
    }

    #[test]
    fn builders_replace_both_knobs() {
        let p = RunPolicy::new()
            .with_fault_plan(FaultPlan::seeded(7).wedged())
            .with_watchdog(Some(Duration::from_millis(50)));
        assert!(p.fault().is_wedged());
        assert_eq!(p.watchdog(), Some(Duration::from_millis(50)));
        let p = p.with_watchdog(None);
        assert_eq!(p.watchdog(), None);
    }

    #[test]
    fn clones_share_the_fault_plan() {
        let p = RunPolicy::new().with_fault_plan(FaultPlan::seeded(1).panic_on_spawn(1));
        let q = p.clone();
        assert!(q.fault().should_panic_spawn());
        // Same underlying counters: the clone's draw consumed the index.
        assert!(!p.fault().should_panic_spawn());
        assert_eq!(p.fault().injected().panics, 1);
    }
}
