//! Shared per-run control block: progress, cancellation, first error.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::SimError;

/// Run control shared between an engine's workers, its watchdog, and the
/// `try_run` caller.
///
/// * Workers call [`tick`](RunCtl::tick) on every unit of real progress
///   (an event delivered, a lock released after useful work, ...).
/// * The watchdog or a failing worker calls [`cancel`](RunCtl::cancel);
///   worker loops poll [`is_cancelled`](RunCtl::is_cancelled) at their
///   retry/reschedule points and retire, letting the run drain cleanly.
/// * The first error recorded via [`record_error`](RunCtl::record_error)
///   wins; `try_run` collects it with [`take_error`](RunCtl::take_error)
///   after quiescence.
#[derive(Debug, Default)]
pub struct RunCtl {
    progress: AtomicU64,
    cancelled: AtomicBool,
    error: Mutex<Option<SimError>>,
}

impl RunCtl {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one unit of forward progress.
    pub fn tick(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` units of forward progress.
    pub fn tick_n(&self, n: u64) {
        self.progress.fetch_add(n, Ordering::Relaxed);
    }

    /// Current progress counter value.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Ask every worker loop to retire at its next cancellation point.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Polled by worker loops at retry/reschedule points.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Record an error; the first recorded error is kept, later ones are
    /// dropped (the first failure is the primary cause, the rest are
    /// usually cascading). Also cancels the run.
    pub fn record_error(&self, err: SimError) {
        {
            let mut slot = self.error.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.cancel();
    }

    /// True if an error has been recorded.
    pub fn has_error(&self) -> bool {
        self.error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Take the recorded error, leaving the slot empty.
    pub fn take_error(&self) -> Option<SimError> {
        self.error.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_error_wins_and_cancels() {
        let ctl = RunCtl::new();
        assert!(!ctl.is_cancelled());
        ctl.record_error(SimError::invariant("first"));
        ctl.record_error(SimError::invariant("second"));
        assert!(ctl.is_cancelled());
        match ctl.take_error() {
            Some(SimError::InvariantViolation { context }) => assert_eq!(context, "first"),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(ctl.take_error().is_none());
    }

    #[test]
    fn progress_accumulates() {
        let ctl = RunCtl::new();
        ctl.tick();
        ctl.tick_n(4);
        assert_eq!(ctl.progress(), 5);
    }
}
