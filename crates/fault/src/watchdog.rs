//! No-progress watchdog.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::{RunCtl, SimError, StallSnapshot};

/// A monitor thread that aborts a run (via cooperative cancellation) when
/// the shared progress counter stops advancing for longer than `deadline`.
///
/// The watchdog never kills threads: on a stall it captures a
/// [`StallSnapshot`] through the engine-supplied closure, records
/// [`SimError::NoProgress`] in the [`RunCtl`], and sets the cancellation
/// flag. Worker loops observe the flag at their retry/reschedule points
/// and retire, so the engine's quiescence protocol still runs and every
/// lock is released through the normal RAII paths.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Arm a watchdog over `ctl`. `snapshot` runs on the watchdog thread
    /// exactly once, at the moment the stall is detected; it must only
    /// read shared state (atomics, lock registry counters), never block
    /// on simulation locks.
    pub fn arm(
        ctl: Arc<RunCtl>,
        deadline: Duration,
        snapshot: impl Fn(Duration, u64) -> StallSnapshot + Send + 'static,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // Poll often enough to detect the stall well inside `deadline`
        // but rarely enough to stay invisible in profiles.
        let poll = (deadline / 10).clamp(Duration::from_millis(1), Duration::from_millis(50));
        let handle = std::thread::Builder::new()
            .name("sim-watchdog".into())
            .spawn(move || {
                let mut last_progress = ctl.progress();
                let mut last_change = Instant::now();
                loop {
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    // An interruptible wait: `disarm` unparks us, so
                    // joining the watchdog never costs a poll interval.
                    // Spurious wakeups just re-check `stop` and the
                    // progress counter, which is harmless.
                    std::thread::park_timeout(poll);
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    let now = ctl.progress();
                    if now != last_progress {
                        last_progress = now;
                        last_change = Instant::now();
                        continue;
                    }
                    let stalled_for = last_change.elapsed();
                    if stalled_for >= deadline {
                        let snap = snapshot(stalled_for, now);
                        ctl.record_error(SimError::NoProgress {
                            snapshot: Box::new(snap),
                        });
                        return;
                    }
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the monitor and join its thread. Call after the run drains,
    /// whether it succeeded or was cancelled.
    pub fn disarm(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_on_stall_and_captures_snapshot() {
        let ctl = Arc::new(RunCtl::new());
        ctl.tick_n(10);
        let dog = Watchdog::arm(
            Arc::clone(&ctl),
            Duration::from_millis(30),
            |stalled_for, ticks| StallSnapshot {
                engine: "test".into(),
                stalled_for,
                progress_ticks: ticks,
                ..StallSnapshot::default()
            },
        );
        // No ticks from here on: the dog must trip well within a second.
        let start = Instant::now();
        while !ctl.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(ctl.is_cancelled(), "watchdog never tripped");
        match ctl.take_error() {
            Some(SimError::NoProgress { snapshot }) => {
                assert_eq!(snapshot.engine, "test");
                assert_eq!(snapshot.progress_ticks, 10);
                assert!(snapshot.stalled_for >= Duration::from_millis(30));
            }
            other => panic!("unexpected: {other:?}"),
        }
        dog.disarm();
    }

    #[test]
    fn does_not_trip_while_progress_flows() {
        let ctl = Arc::new(RunCtl::new());
        let dog = Watchdog::arm(
            Arc::clone(&ctl),
            Duration::from_millis(40),
            |stalled_for, ticks| StallSnapshot {
                engine: "test".into(),
                stalled_for,
                progress_ticks: ticks,
                ..StallSnapshot::default()
            },
        );
        for _ in 0..20 {
            ctl.tick();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!ctl.is_cancelled(), "watchdog tripped despite progress");
        dog.disarm();
        assert!(ctl.take_error().is_none());
    }

    #[test]
    fn disarm_before_deadline_is_clean() {
        let ctl = Arc::new(RunCtl::new());
        let dog = Watchdog::arm(Arc::clone(&ctl), Duration::from_secs(60), |_, _| {
            StallSnapshot::default()
        });
        dog.disarm();
        assert!(!ctl.is_cancelled());
    }
}
