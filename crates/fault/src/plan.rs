//! Seeded, counter-based fault plans.
//!
//! A [`FaultPlan`] is consulted by engines at well-defined *decision
//! points* (task spawn, `try_lock_all` attempt, node activation, Galois
//! commit). Each decision point draws the next value from a per-kind
//! atomic counter and hashes `(seed, kind, counter)` through splitmix64
//! to a uniform value, so:
//!
//! * a disabled plan costs one relaxed atomic load per check;
//! * two runs with the same seed make identical decision *streams* — the
//!   Nth lock-acquire decision is the same in both runs even if a
//!   different thread happens to execute it;
//! * injection counts are exposed via [`InjectionCounts`] so tests can
//!   assert that faults actually fired.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The kinds of decision points a plan can inject at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic a simulation task at spawn/claim time.
    SpawnPanic,
    /// Force a `try_lock_all` attempt to report failure.
    TryLockFail,
    /// Delay a node activation (straggler).
    Straggler,
    /// Force a Galois iteration to conflict and abort.
    GaloisConflict,
}

impl FaultKind {
    fn salt(self) -> u64 {
        match self {
            FaultKind::SpawnPanic => 0x5350_414e,
            FaultKind::TryLockFail => 0x4c4f_434b,
            FaultKind::Straggler => 0x534c_4f57,
            FaultKind::GaloisConflict => 0x434f_4e46,
        }
    }
}

/// How many faults of each kind a plan has injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionCounts {
    pub panics: u64,
    pub lock_failures: u64,
    pub stragglers: u64,
    pub conflicts: u64,
}

#[derive(Debug, Default)]
struct Counters {
    spawns: AtomicU64,
    shard_asks: AtomicU64,
    migration_asks: AtomicU64,
    lock_attempts: AtomicU64,
    activations: AtomicU64,
    commits: AtomicU64,
    injected_panics: AtomicU64,
    injected_lock_failures: AtomicU64,
    injected_stragglers: AtomicU64,
    injected_conflicts: AtomicU64,
    // Sticky (reset-immune) latches for the recovery faults: a restarted
    // attempt calls `reset()` before running, but a killed rank must stay
    // killed and a dropped link must stay dropped across the restore, or
    // the injection would refire forever and recovery could never finish.
    rank_kill_fired: AtomicU64,
    link_frames_seen: AtomicU64,
    link_drop_fired: AtomicU64,
}

/// A deterministic description of the faults to inject into one run.
///
/// Construct with [`FaultPlan::seeded`] and the builder methods, or
/// [`FaultPlan::none`] for a no-op plan. Plans are internally mutable
/// (atomic counters) and are shared across workers behind an `Arc`.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    active: bool,
    /// Panic the task handling the Nth spawn decision (1-based).
    panic_on_spawn: Option<u64>,
    /// Panic the worker running the given shard (sharded engine only).
    panic_in_shard: Option<u64>,
    /// Panic a shard core entering the given migration epoch (1-based;
    /// sharded engine with rebalancing only).
    panic_on_migration: Option<u64>,
    /// Probability that a `try_lock_all` attempt is forced to fail.
    trylock_fail_rate: f64,
    /// Probability that a node activation is delayed, and by how much.
    straggler_rate: f64,
    straggler_delay: Duration,
    /// Probability that a Galois commit is forced to conflict.
    conflict_rate: f64,
    /// Deliberately wedge the run: suppress all progress so the watchdog
    /// must trip. Used by the watchdog tests.
    wedge: bool,
    /// Kill rank `.0` (panic its shard cores) when it reaches checkpoint
    /// epoch `.1` — the fault the recovery path restores from.
    kill_rank_at_epoch: Option<(u64, u64)>,
    /// Simulate a link failure on the reader for peer `.0` after `.1`
    /// frames have arrived from it (distributed fabric only).
    drop_link: Option<(u64, u64)>,
    counters: Counters,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a 64-bit hash to [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// A plan that injects nothing. All checks are single relaxed loads.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            active: false,
            panic_on_spawn: None,
            panic_in_shard: None,
            panic_on_migration: None,
            trylock_fail_rate: 0.0,
            straggler_rate: 0.0,
            straggler_delay: Duration::ZERO,
            conflict_rate: 0.0,
            wedge: false,
            kill_rank_at_epoch: None,
            drop_link: None,
            counters: Counters::default(),
        }
    }

    /// An empty active plan with the given seed; add faults with the
    /// builder methods.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            active: true,
            ..Self::none()
        }
    }

    /// Panic the task handling the `n`th spawn decision (1-based).
    pub fn panic_on_spawn(mut self, n: u64) -> Self {
        assert!(n >= 1, "spawn indices are 1-based");
        self.panic_on_spawn = Some(n);
        self
    }

    /// Panic the worker running shard `shard` (sharded engine): a
    /// shard-targeted variant of [`FaultPlan::panic_on_spawn`] that pins
    /// the failure to one partition regardless of activation interleaving.
    pub fn panic_in_shard(mut self, shard: u64) -> Self {
        self.panic_in_shard = Some(shard);
        self
    }

    /// Panic the first shard core that enters migration epoch `n`
    /// (1-based): exercises failure containment at the most delicate
    /// point of the rebalancing protocol, while peers are waiting at the
    /// epoch barrier.
    pub fn panic_on_migration(mut self, n: u64) -> Self {
        assert!(n >= 1, "migration epochs are 1-based");
        self.panic_on_migration = Some(n);
        self
    }

    /// Force each `try_lock_all` attempt to fail with probability `rate`.
    pub fn fail_trylock(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.trylock_fail_rate = rate;
        self
    }

    /// Delay each node activation by `delay` with probability `rate`.
    pub fn straggler(mut self, rate: f64, delay: Duration) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.straggler_rate = rate;
        self.straggler_delay = delay;
        self
    }

    /// Force each Galois commit to conflict with probability `rate`.
    pub fn force_conflicts(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.conflict_rate = rate;
        self
    }

    /// Wedge the run deliberately so the no-progress watchdog must trip.
    pub fn wedged(mut self) -> Self {
        self.wedge = true;
        self
    }

    /// Kill rank `rank` when it reaches checkpoint epoch `epoch`
    /// (1-based): its shard cores panic at the barrier, before the
    /// epoch's snapshot is written, so a restore resumes from epoch
    /// `epoch - 1`. The latch is *sticky across [`FaultPlan::reset`]* —
    /// the restarted attempt must not be killed again.
    pub fn kill_rank_at_epoch(mut self, rank: u64, epoch: u64) -> Self {
        assert!(epoch >= 1, "checkpoint epochs are 1-based");
        self.kill_rank_at_epoch = Some((rank, epoch));
        self
    }

    /// Drop the inbound link from peer `peer` after `after_frames` frames
    /// have been read from it: the reader fails as if the socket died,
    /// exercising reconnect/recovery without a real network fault. Sticky
    /// across [`FaultPlan::reset`], like [`FaultPlan::kill_rank_at_epoch`].
    pub fn drop_link(mut self, peer: u64, after_frames: u64) -> Self {
        self.drop_link = Some((peer, after_frames));
        self
    }

    /// True if any injection is configured. Engines use this to skip all
    /// fault bookkeeping on the hot path for plain runs.
    pub fn is_active(&self) -> bool {
        self.active
            && (self.panic_on_spawn.is_some()
                || self.panic_in_shard.is_some()
                || self.panic_on_migration.is_some()
                || self.trylock_fail_rate > 0.0
                || self.straggler_rate > 0.0
                || self.conflict_rate > 0.0
                || self.wedge
                || self.kill_rank_at_epoch.is_some()
                || self.drop_link.is_some())
    }

    /// True if the plan wedges the run (progress deliberately suppressed).
    pub fn is_wedged(&self) -> bool {
        self.active && self.wedge
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn roll(&self, kind: FaultKind, counter: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ kind.salt().wrapping_mul(0x9E37_79B9).wrapping_add(counter));
        unit(h) < rate
    }

    /// Decision point: a simulation task is being spawned/claimed.
    /// Returns true exactly once, for the configured spawn index.
    pub fn should_panic_spawn(&self) -> bool {
        let Some(n) = self.panic_on_spawn else {
            return false;
        };
        let at = self.counters.spawns.fetch_add(1, Ordering::Relaxed) + 1;
        if at == n {
            self.counters.injected_panics.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Decision point: the worker for shard `shard` is about to run a node.
    /// Returns true exactly once, the first time the targeted shard asks.
    pub fn should_panic_shard(&self, shard: u64) -> bool {
        if self.panic_in_shard != Some(shard) {
            return false;
        }
        // Reuse the spawn counter family: fire on this shard's first ask.
        if self.counters.shard_asks.fetch_add(1, Ordering::Relaxed) == 0 {
            self.counters.injected_panics.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Decision point: a shard core is entering migration epoch `epoch`
    /// (1-based). Returns true exactly once, for the first core that asks
    /// at the configured epoch.
    pub fn should_panic_migration(&self, epoch: u64) -> bool {
        if self.panic_on_migration != Some(epoch) {
            return false;
        }
        if self.counters.migration_asks.fetch_add(1, Ordering::Relaxed) == 0 {
            self.counters.injected_panics.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Decision point: rank `rank`'s shard cores are entering checkpoint
    /// epoch `epoch` (1-based). Returns true exactly once per plan value,
    /// for the first core that asks on the targeted rank at the targeted
    /// epoch — and never again, even after [`FaultPlan::reset`].
    pub fn should_kill_rank(&self, rank: u64, epoch: u64) -> bool {
        if self.kill_rank_at_epoch != Some((rank, epoch)) {
            return false;
        }
        if self.counters.rank_kill_fired.fetch_add(1, Ordering::Relaxed) == 0 {
            self.counters.injected_panics.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Decision point: one frame just arrived from peer `peer`. Returns
    /// true exactly once, when the configured frame count is reached; the
    /// reader then fails the link as if the socket had died. Sticky
    /// across [`FaultPlan::reset`].
    pub fn should_drop_link(&self, peer: u64) -> bool {
        let Some((target, after)) = self.drop_link else {
            return false;
        };
        if peer != target {
            return false;
        }
        let seen = self.counters.link_frames_seen.fetch_add(1, Ordering::Relaxed) + 1;
        seen >= after && self.counters.link_drop_fired.fetch_add(1, Ordering::Relaxed) == 0
    }

    /// Decision point: a `try_lock_all` attempt is about to run. Returns
    /// true if the attempt must be treated as failed.
    pub fn should_fail_trylock(&self) -> bool {
        if self.trylock_fail_rate <= 0.0 {
            return false;
        }
        let c = self.counters.lock_attempts.fetch_add(1, Ordering::Relaxed);
        if self.roll(FaultKind::TryLockFail, c, self.trylock_fail_rate) {
            self.counters
                .injected_lock_failures
                .fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Decision point: a node activation is starting. Returns the delay to
    /// apply, if this activation is selected as a straggler.
    pub fn straggler_delay(&self) -> Option<Duration> {
        if self.straggler_rate <= 0.0 {
            return None;
        }
        let c = self.counters.activations.fetch_add(1, Ordering::Relaxed);
        if self.roll(FaultKind::Straggler, c, self.straggler_rate) {
            self.counters
                .injected_stragglers
                .fetch_add(1, Ordering::Relaxed);
            Some(self.straggler_delay)
        } else {
            None
        }
    }

    /// Decision point: a Galois iteration is about to commit. Returns true
    /// if it must be forced to conflict and abort.
    pub fn should_force_conflict(&self) -> bool {
        if self.conflict_rate <= 0.0 {
            return false;
        }
        let c = self.counters.commits.fetch_add(1, Ordering::Relaxed);
        if self.roll(FaultKind::GaloisConflict, c, self.conflict_rate) {
            self.counters
                .injected_conflicts
                .fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Snapshot of how many faults have been injected so far.
    pub fn injected(&self) -> InjectionCounts {
        InjectionCounts {
            panics: self.counters.injected_panics.load(Ordering::Relaxed),
            lock_failures: self
                .counters
                .injected_lock_failures
                .load(Ordering::Relaxed),
            stragglers: self.counters.injected_stragglers.load(Ordering::Relaxed),
            conflicts: self.counters.injected_conflicts.load(Ordering::Relaxed),
        }
    }

    /// Reset decision counters so the same plan value can drive another
    /// run with an identical decision stream. The recovery latches
    /// ([`FaultPlan::kill_rank_at_epoch`], [`FaultPlan::drop_link`]) are
    /// deliberately *not* reset: a restored attempt re-runs the plan but
    /// must not re-suffer the fault it is recovering from.
    pub fn reset(&self) {
        self.counters.spawns.store(0, Ordering::Relaxed);
        self.counters.shard_asks.store(0, Ordering::Relaxed);
        self.counters.migration_asks.store(0, Ordering::Relaxed);
        self.counters.lock_attempts.store(0, Ordering::Relaxed);
        self.counters.activations.store(0, Ordering::Relaxed);
        self.counters.commits.store(0, Ordering::Relaxed);
        self.counters.injected_panics.store(0, Ordering::Relaxed);
        self.counters
            .injected_lock_failures
            .store(0, Ordering::Relaxed);
        self.counters.injected_stragglers.store(0, Ordering::Relaxed);
        self.counters.injected_conflicts.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for _ in 0..100 {
            assert!(!plan.should_panic_spawn());
            assert!(!plan.should_fail_trylock());
            assert!(plan.straggler_delay().is_none());
            assert!(!plan.should_force_conflict());
        }
        assert_eq!(plan.injected(), InjectionCounts::default());
    }

    #[test]
    fn spawn_panic_fires_exactly_once_at_index() {
        let plan = FaultPlan::seeded(1).panic_on_spawn(3);
        let fired: Vec<bool> = (0..6).map(|_| plan.should_panic_spawn()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(plan.injected().panics, 1);
    }

    #[test]
    fn shard_panic_targets_one_shard_and_fires_once() {
        let plan = FaultPlan::seeded(3).panic_in_shard(2);
        assert!(plan.is_active());
        assert!(!plan.should_panic_shard(0));
        assert!(!plan.should_panic_shard(1));
        assert!(plan.should_panic_shard(2));
        assert!(!plan.should_panic_shard(2)); // only once
        assert_eq!(plan.injected().panics, 1);
        // Reset replays the decision.
        plan.reset();
        assert!(plan.should_panic_shard(2));
    }

    #[test]
    fn migration_panic_targets_one_epoch_and_fires_once() {
        let plan = FaultPlan::seeded(11).panic_on_migration(2);
        assert!(plan.is_active());
        assert!(!plan.should_panic_migration(1));
        assert!(plan.should_panic_migration(2));
        assert!(!plan.should_panic_migration(2)); // only once
        assert_eq!(plan.injected().panics, 1);
        plan.reset();
        assert!(plan.should_panic_migration(2));
    }

    #[test]
    fn rank_kill_fires_once_and_survives_reset() {
        let plan = FaultPlan::seeded(5).kill_rank_at_epoch(1, 2);
        assert!(plan.is_active());
        assert!(!plan.should_kill_rank(0, 2)); // wrong rank
        assert!(!plan.should_kill_rank(1, 1)); // wrong epoch
        assert!(plan.should_kill_rank(1, 2));
        assert!(!plan.should_kill_rank(1, 2)); // only once
        assert_eq!(plan.injected().panics, 1);
        // The restarted attempt resets counters but must not be re-killed.
        plan.reset();
        assert!(!plan.should_kill_rank(1, 2));
    }

    #[test]
    fn link_drop_fires_after_frame_count_and_survives_reset() {
        let plan = FaultPlan::seeded(5).drop_link(1, 3);
        assert!(plan.is_active());
        assert!(!plan.should_drop_link(0)); // wrong peer, does not count
        assert!(!plan.should_drop_link(1)); // frame 1
        assert!(!plan.should_drop_link(1)); // frame 2
        assert!(plan.should_drop_link(1)); // frame 3: fire
        assert!(!plan.should_drop_link(1)); // latched
        plan.reset();
        assert!(!plan.should_drop_link(1));
    }

    #[test]
    fn decision_stream_is_reproducible() {
        let a = FaultPlan::seeded(42).fail_trylock(0.3);
        let b = FaultPlan::seeded(42).fail_trylock(0.3);
        let sa: Vec<bool> = (0..256).map(|_| a.should_fail_trylock()).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.should_fail_trylock()).collect();
        assert_eq!(sa, sb);
        assert!(a.injected().lock_failures > 0);

        // And reset replays the same stream.
        a.reset();
        let sa2: Vec<bool> = (0..256).map(|_| a.should_fail_trylock()).collect();
        assert_eq!(sa, sa2);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = FaultPlan::seeded(1).fail_trylock(0.5);
        let b = FaultPlan::seeded(2).fail_trylock(0.5);
        let sa: Vec<bool> = (0..128).map(|_| a.should_fail_trylock()).collect();
        let sb: Vec<bool> = (0..128).map(|_| b.should_fail_trylock()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn rate_extremes_behave() {
        let always = FaultPlan::seeded(5).force_conflicts(1.0);
        assert!((0..32).all(|_| always.should_force_conflict()));

        let never = FaultPlan::seeded(5).fail_trylock(0.0);
        assert!((0..32).all(|_| !never.should_fail_trylock()));
    }

    #[test]
    fn straggler_returns_configured_delay() {
        let plan = FaultPlan::seeded(9).straggler(1.0, Duration::from_millis(2));
        assert_eq!(plan.straggler_delay(), Some(Duration::from_millis(2)));
        assert_eq!(plan.injected().stragglers, 1);
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan::seeded(7).fail_trylock(0.25);
        let hits = (0..4000).filter(|_| plan.should_fail_trylock()).count();
        assert!(
            (700..1300).contains(&hits),
            "expected ~1000 hits at rate 0.25, got {hits}"
        );
    }
}
