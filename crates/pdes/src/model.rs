//! The logical-process model.
//!
//! A simulation is a set of [`Lp`]s connected by FIFO channels. Each LP
//! consumes events in timestamp order (merged across its input channels
//! and its own self-scheduled events) and reacts by sending events on its
//! output channels and/or scheduling future events to itself.
//!
//! **Model obligations** (checked with debug assertions):
//! * sends on one channel must have nondecreasing timestamps;
//! * a send's delay must be ≥ the channel's lookahead;
//! * self-schedules must not go backwards in time.

use std::any::Any;

use crate::{Time, T_INF};

/// What an LP may do while handling an event.
pub struct Ctx<E> {
    pub(crate) now: Time,
    /// (output index, absolute timestamp, payload)
    pub(crate) sends: Vec<(usize, Time, E)>,
    /// (absolute timestamp, payload)
    pub(crate) selfs: Vec<(Time, E)>,
    /// Lookahead per output channel (for the debug obligation check).
    pub(crate) out_lookahead: Vec<Time>,
}

impl<E> Ctx<E> {
    pub(crate) fn new(out_lookahead: Vec<Time>) -> Self {
        Ctx {
            now: 0,
            sends: Vec::new(),
            selfs: Vec::new(),
            out_lookahead,
        }
    }

    pub(crate) fn reset(&mut self, now: Time) {
        self.now = now;
        debug_assert!(self.sends.is_empty() && self.selfs.is_empty());
    }

    /// The timestamp of the event being handled.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of output channels of this LP.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.out_lookahead.len()
    }

    /// Send `event` on output channel `out_ix`, `delay` ticks from now.
    ///
    /// `delay` must be at least the channel's lookahead.
    #[inline]
    pub fn send(&mut self, out_ix: usize, delay: Time, event: E) {
        debug_assert!(
            delay >= self.out_lookahead[out_ix],
            "send delay {delay} below lookahead {} on output {out_ix}",
            self.out_lookahead[out_ix]
        );
        let at = self.now.checked_add(delay).expect("time overflow");
        debug_assert!(at < T_INF);
        self.sends.push((out_ix, at, event));
    }

    /// Schedule `event` back to this LP, `delay` ticks from now (≥ 0).
    #[inline]
    pub fn schedule(&mut self, delay: Time, event: E) {
        let at = self.now.checked_add(delay).expect("time overflow");
        debug_assert!(at < T_INF);
        self.selfs.push((at, event));
    }
}

/// A logical process over event type `E`.
pub trait Lp<E>: Send {
    /// Called once before the simulation starts (`ctx.now() == 0`);
    /// sources seed their first events here.
    fn init(&mut self, ctx: &mut Ctx<E>) {
        let _ = ctx;
    }

    /// Handle one event at its timestamp, in order.
    fn handle(&mut self, event: E, ctx: &mut Ctx<E>);

    /// Downcast support so callers can retrieve model-specific state
    /// after the run.
    fn as_any(&self) -> &dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Lp<u32> for Echo {
        fn handle(&mut self, event: u32, ctx: &mut Ctx<u32>) {
            ctx.send(0, 2, event + 1);
            ctx.schedule(0, event);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn ctx_records_absolute_times() {
        let mut ctx = Ctx::new(vec![2]);
        ctx.reset(10);
        let mut lp = Echo;
        lp.handle(5, &mut ctx);
        assert_eq!(ctx.sends, vec![(0, 12, 6)]);
        assert_eq!(ctx.selfs, vec![(10, 5)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "below lookahead")]
    fn lookahead_violation_caught_in_debug() {
        let mut ctx = Ctx::new(vec![5]);
        ctx.reset(0);
        ctx.send(0, 3, 1u32);
    }
}
