//! The conservative simulation kernel: two drivers, one semantics.
//!
//! ## Semantics (Chandy–Misra with null messages)
//!
//! Each channel carries a **clock**: a lower bound on the timestamps of
//! all its future messages, advanced by payload deliveries and by *null
//! messages* (pure promises). An LP's input clock is the minimum over its
//! input channels; every queued input event and self-scheduled event with
//! timestamp ≤ that clock is **safe** and processed in timestamp order.
//! After draining, the LP's earliest possible future output trigger is
//! `bound = min(input clock, earliest self-event)`; each output channel
//! is promised `bound + lookahead`. Promises that reach the simulation
//! **horizon** close the channel (clock = ∞), which is how the run
//! terminates even on cyclic topologies.
//!
//! Events (sends or self-schedules) at or beyond the horizon are dropped
//! (and counted) — the standard "simulate until T" contract.
//!
//! [`SeqKernel`] drives LPs from a sequential workset;
//! [`ParKernel`] runs one HJ task per active LP with per-channel
//! trylocks, generalizing the paper's Algorithm 2 beyond circuits.
//!
//! ## Known cost: null-message overhead
//!
//! On cycles with small lookahead, clocks crawl to the horizon in
//! lookahead-sized steps once payload traffic dies out — the classic
//! null-message overhead of conservative PDES (see the feedback network
//! in `examples/network_sim.rs`, where nulls outnumber payloads ~45:1).
//! This is faithful to the protocol; production simulators mitigate it
//! with larger lookahead, demand-driven nulls, or global termination
//! detection. It is also why the paper's circuit study (a DAG) only
//! needed the degenerate end-of-stream NULL.

pub mod par;
pub mod seq;

pub use par::ParKernel;
pub use seq::SeqKernel;

use std::collections::{BinaryHeap, VecDeque};

use crate::model::{Ctx, Lp};
use crate::topology::Topology;
use crate::{Time, T_INF};

/// Counters from one kernel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Payload events delivered over channels.
    pub events_delivered: u64,
    /// Events handled by LPs (channel payloads + self events).
    pub events_processed: u64,
    /// Self-scheduled events enqueued.
    pub self_scheduled: u64,
    /// Null messages (promise advances) delivered.
    pub nulls_sent: u64,
    /// Emissions dropped for being at/beyond the horizon.
    pub dropped_at_horizon: u64,
    /// LP activations.
    pub lp_runs: u64,
    /// Equal-timestamp event pairs processed at one LP. The kernel
    /// processes ties in arrival order, which the parallel driver does not
    /// fix across runs — so the cross-engine determinism contract holds
    /// **only for runs where this is 0**. Models that must be
    /// reproducible should jitter their timestamps (see
    /// [`crate::queueing`]).
    pub ties_observed: u64,
    /// TRYLOCK acquisition rounds repeated after a failed attempt
    /// (parallel driver only; bounded per activation).
    pub lock_retries: u64,
    /// Backoff waits taken between those rounds.
    pub backoff_waits: u64,
}

/// The behaviours plus the kernel's verdict for one run.
pub struct RunOutcome<E> {
    /// The LP behaviours, in id order, with their final state (downcast
    /// via [`Lp::as_any`] to read model results).
    pub lps: Vec<Box<dyn Lp<E>>>,
    pub stats: KernelStats,
}

/// A self-scheduled event, ordered by (time, insertion sequence).
#[derive(Debug)]
pub(crate) struct SelfEvent<E> {
    pub at: Time,
    pub seq: u64,
    pub event: E,
}

impl<E> PartialEq for SelfEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for SelfEvent<E> {}
impl<E> PartialOrd for SelfEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for SelfEvent<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Per-LP state shared by both drivers (synchronization differs; the
/// parallel driver wraps channels and cores separately).
pub(crate) struct LpCore<E> {
    pub behavior: Box<dyn Lp<E>>,
    pub internal: BinaryHeap<SelfEvent<E>>,
    pub self_seq: u64,
    /// Timestamp of the last event this LP handled (tie detection).
    pub last_handled: Option<Time>,
    /// Last promised lower bound per output channel (index-aligned with
    /// `Topology::outputs`).
    pub out_guarantee: Vec<Time>,
    pub ctx: Ctx<E>,
}

impl<E> LpCore<E> {
    pub fn new(behavior: Box<dyn Lp<E>>, out_lookahead: Vec<Time>) -> Self {
        let n_out = out_lookahead.len();
        LpCore {
            behavior,
            internal: BinaryHeap::new(),
            self_seq: 0,
            last_handled: None,
            out_guarantee: vec![0; n_out],
            ctx: Ctx::new(out_lookahead),
        }
    }

    /// Record one handled event's timestamp; returns true when it ties
    /// with the previous one (order-sensitivity hazard).
    #[inline]
    pub fn note_handled(&mut self, at: Time) -> bool {
        let tie = self.last_handled == Some(at);
        self.last_handled = Some(at);
        tie
    }

    /// Timestamp of the earliest self event (`T_INF` if none).
    #[inline]
    pub fn internal_head(&self) -> Time {
        self.internal.peek().map_or(T_INF, |s| s.at)
    }

    /// Insert the ctx's self-schedules into the internal heap, dropping
    /// those at/beyond the horizon. Returns (inserted, dropped).
    pub fn absorb_self_schedules(&mut self, horizon: Time) -> (u64, u64) {
        let mut inserted = 0;
        let mut dropped = 0;
        for (at, event) in self.ctx.selfs.drain(..) {
            if at >= horizon {
                dropped += 1;
                continue;
            }
            self.internal.push(SelfEvent {
                at,
                seq: self.self_seq,
                event,
            });
            self.self_seq += 1;
            inserted += 1;
        }
        (inserted, dropped)
    }
}

/// One FIFO input channel's receiver-side state (sequential flavour; the
/// parallel driver keeps the clock in an atomic instead).
#[derive(Debug)]
pub(crate) struct ChannelQueue<E> {
    pub deque: VecDeque<(Time, E)>,
    /// Lower bound on all future arrivals.
    pub clock: Time,
}

impl<E> ChannelQueue<E> {
    pub fn new() -> Self {
        ChannelQueue {
            deque: VecDeque::new(),
            clock: 0,
        }
    }

    #[inline]
    pub fn head(&self) -> Time {
        self.deque.front().map_or(T_INF, |&(t, _)| t)
    }

    #[inline]
    pub fn push(&mut self, at: Time, event: E) {
        debug_assert!(
            self.deque.back().is_none_or(|&(t, _)| t <= at),
            "per-channel sends must be nondecreasing"
        );
        debug_assert!(self.clock != T_INF, "send on a closed channel");
        self.deque.push_back((at, event));
        self.clock = self.clock.max(at);
    }

    /// Apply a null-message promise. A promise weaker than the current
    /// clock is legal (a payload may already have advanced the clock past
    /// it, e.g. a server announcing a far-future departure) — the clock
    /// only ever moves forward.
    #[inline]
    pub fn promise(&mut self, guarantee: Time) {
        self.clock = self.clock.max(guarantee);
    }
}

/// Promise value for one output: `bound + lookahead`, closed at the
/// horizon.
#[inline]
pub(crate) fn promise_for(bound: Time, lookahead: Time, horizon: Time) -> Time {
    if bound == T_INF {
        return T_INF;
    }
    let g = bound.saturating_add(lookahead);
    if g >= horizon {
        T_INF
    } else {
        g
    }
}

/// Validate a behaviour list against a topology.
pub(crate) fn check_shapes<E>(topology: &Topology, lps: &[Box<dyn Lp<E>>]) {
    assert_eq!(
        topology.num_lps(),
        lps.len(),
        "one behaviour per topology LP required"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_event_heap_orders_by_time_then_seq() {
        let mut heap: BinaryHeap<SelfEvent<u32>> = BinaryHeap::new();
        heap.push(SelfEvent { at: 5, seq: 0, event: 1 });
        heap.push(SelfEvent { at: 3, seq: 1, event: 2 });
        heap.push(SelfEvent { at: 5, seq: 2, event: 3 });
        assert_eq!(heap.pop().unwrap().event, 2);
        assert_eq!(heap.pop().unwrap().event, 1); // seq 0 before seq 2
        assert_eq!(heap.pop().unwrap().event, 3);
    }

    #[test]
    fn channel_queue_clock_tracks_arrivals_and_promises() {
        let mut q: ChannelQueue<u32> = ChannelQueue::new();
        assert_eq!(q.head(), T_INF);
        q.push(4, 9);
        assert_eq!(q.clock, 4);
        assert_eq!(q.head(), 4);
        q.promise(10);
        assert_eq!(q.clock, 10);
        q.promise(T_INF);
        assert_eq!(q.clock, T_INF);
    }

    #[test]
    fn promise_caps_at_horizon() {
        assert_eq!(promise_for(5, 3, 100), 8);
        assert_eq!(promise_for(98, 3, 100), T_INF);
        assert_eq!(promise_for(T_INF, 3, 100), T_INF);
    }
}
