//! The sequential kernel driver (workset-based, like the paper's
//! Algorithm 1 generalized to arbitrary LPs and cyclic topologies).

use std::collections::VecDeque;

use crate::kernel::{check_shapes, promise_for, ChannelQueue, KernelStats, LpCore, RunOutcome};
use crate::model::Lp;
use crate::topology::{LpId, Topology};
use crate::{Time, T_INF};

/// The sequential driver.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeqKernel;

impl SeqKernel {
    pub fn new() -> Self {
        SeqKernel
    }

    /// Run `lps` over `topology` until quiescent at the given horizon.
    pub fn run<E: Send>(
        &self,
        topology: &Topology,
        lps: Vec<Box<dyn Lp<E>>>,
        horizon: Time,
    ) -> RunOutcome<E> {
        check_shapes(topology, &lps);
        assert!((1..T_INF).contains(&horizon));
        let mut sim = Sim::new(topology, lps, horizon);

        // Initialization: every LP seeds itself, then everybody gets one
        // activation so initial promises propagate.
        let mut workset: VecDeque<LpId> = VecDeque::new();
        let mut queued = vec![true; topology.num_lps()];
        for i in 0..topology.num_lps() {
            sim.init_lp(LpId(i as u32));
            workset.push_back(LpId(i as u32));
        }

        while let Some(id) = workset.pop_front() {
            queued[id.index()] = false;
            sim.run_lp(id);
            // The LP itself plus every LP we delivered to or promised to
            // may have changed activity.
            let mut candidates = std::mem::take(&mut sim.touched);
            candidates.push(id);
            for m in candidates.drain(..) {
                if !queued[m.index()] && sim.is_active(m) {
                    queued[m.index()] = true;
                    workset.push_back(m);
                }
            }
            sim.touched = candidates;
        }

        sim.finish()
    }
}

struct Sim<'a, E> {
    topology: &'a Topology,
    horizon: Time,
    cores: Vec<LpCore<E>>,
    channels: Vec<ChannelQueue<E>>,
    stats: KernelStats,
    /// LPs affected by the last `run_lp` (deliveries + promises).
    touched: Vec<LpId>,
}

impl<'a, E: Send> Sim<'a, E> {
    fn new(topology: &'a Topology, lps: Vec<Box<dyn Lp<E>>>, horizon: Time) -> Self {
        let cores = lps
            .into_iter()
            .enumerate()
            .map(|(i, behavior)| {
                let lookaheads = topology
                    .outputs(LpId(i as u32))
                    .iter()
                    .map(|&c| topology.channel(c).lookahead)
                    .collect();
                LpCore::new(behavior, lookaheads)
            })
            .collect();
        let channels = (0..topology.num_channels()).map(|_| ChannelQueue::new()).collect();
        Sim {
            topology,
            horizon,
            cores,
            channels,
            stats: KernelStats::default(),
            touched: Vec::new(),
        }
    }

    fn input_clock(&self, id: LpId) -> Time {
        self.topology
            .inputs(id)
            .iter()
            .map(|&c| self.channels[c.index()].clock)
            .min()
            .unwrap_or(T_INF)
    }

    fn init_lp(&mut self, id: LpId) {
        let core = &mut self.cores[id.index()];
        core.ctx.reset(0);
        core.behavior.init(&mut core.ctx);
        self.flush_emissions(id);
    }

    /// Move the ctx's sends/self-schedules out into the world.
    fn flush_emissions(&mut self, id: LpId) {
        let (inserted, dropped) = self.cores[id.index()].absorb_self_schedules(self.horizon);
        self.stats.self_scheduled += inserted;
        self.stats.dropped_at_horizon += dropped;
        let sends = std::mem::take(&mut self.cores[id.index()].ctx.sends);
        for (out_ix, at, event) in sends {
            let ch_id = self.topology.outputs(id)[out_ix];
            if at >= self.horizon {
                self.stats.dropped_at_horizon += 1;
                continue;
            }
            self.stats.events_delivered += 1;
            self.channels[ch_id.index()].push(at, event);
            self.touched.push(self.topology.channel(ch_id).dst);
        }
    }

    /// One activation: drain all safe events, then refresh promises.
    fn run_lp(&mut self, id: LpId) {
        self.stats.lp_runs += 1;
        loop {
            let clock = self.input_clock(id);
            // Earliest safe event: min over input heads and internal head.
            let mut best: Option<(Time, Option<usize>)> = None; // (ts, input ix or None=self)
            for (ix, &c) in self.topology.inputs(id).iter().enumerate() {
                let h = self.channels[c.index()].head();
                if h != T_INF && h <= clock && best.is_none_or(|(bt, _)| h < bt) {
                    best = Some((h, Some(ix)));
                }
            }
            let ih = self.cores[id.index()].internal_head();
            if ih != T_INF && ih <= clock && best.is_none_or(|(bt, _)| ih < bt) {
                best = Some((ih, None));
            }
            let Some((at, which)) = best else { break };
            let event = match which {
                Some(ix) => {
                    let c = self.topology.inputs(id)[ix];
                    self.channels[c.index()].deque.pop_front().expect("head exists").1
                }
                None => self.cores[id.index()].internal.pop().expect("head exists").event,
            };
            self.stats.events_processed += 1;
            let core = &mut self.cores[id.index()];
            if core.note_handled(at) {
                self.stats.ties_observed += 1;
            }
            core.ctx.reset(at);
            core.behavior.handle(event, &mut core.ctx);
            self.flush_emissions(id);
        }
        self.refresh_promises(id);
    }

    /// Send null messages for every output whose promise can advance.
    fn refresh_promises(&mut self, id: LpId) {
        let bound = self.input_clock(id).min(self.cores[id.index()].internal_head());
        for (out_ix, &c) in self.topology.outputs(id).iter().enumerate() {
            let lookahead = self.topology.channel(c).lookahead;
            let g = promise_for(bound, lookahead, self.horizon);
            if g > self.cores[id.index()].out_guarantee[out_ix] {
                self.cores[id.index()].out_guarantee[out_ix] = g;
                self.channels[c.index()].promise(g);
                self.stats.nulls_sent += 1;
                self.touched.push(self.topology.channel(c).dst);
            }
        }
    }

    fn is_active(&self, id: LpId) -> bool {
        let clock = self.input_clock(id);
        // Safe work pending?
        for &c in self.topology.inputs(id) {
            let h = self.channels[c.index()].head();
            if h != T_INF && h <= clock {
                return true;
            }
        }
        let core = &self.cores[id.index()];
        let ih = core.internal_head();
        if ih != T_INF && ih <= clock {
            return true;
        }
        // Promise advance pending?
        let bound = clock.min(core.internal_head());
        for (out_ix, &c) in self.topology.outputs(id).iter().enumerate() {
            let g = promise_for(bound, self.topology.channel(c).lookahead, self.horizon);
            if g > core.out_guarantee[out_ix] {
                return true;
            }
        }
        false
    }

    fn finish(self) -> RunOutcome<E> {
        // Quiescence invariants: every channel closed and drained.
        for (ix, ch) in self.channels.iter().enumerate() {
            debug_assert_eq!(ch.clock, T_INF, "channel {ix} never closed");
            debug_assert!(ch.deque.is_empty(), "channel {ix} has undrained events");
        }
        for (ix, core) in self.cores.iter().enumerate() {
            debug_assert_eq!(core.internal_head(), T_INF, "LP {ix} has unprocessed self events");
        }
        RunOutcome {
            lps: self.cores.into_iter().map(|c| c.behavior).collect(),
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Ctx;
    use crate::topology::TopologyBuilder;
    use std::any::Any;

    /// Sends `count` ticks to output 0, one every `period`.
    struct Ticker {
        period: Time,
        count: u64,
    }

    impl Lp<u64> for Ticker {
        fn init(&mut self, ctx: &mut Ctx<u64>) {
            if self.count > 0 {
                ctx.schedule(self.period, 0);
            }
        }
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            ctx.send(0, 1, n);
            if n + 1 < self.count {
                ctx.schedule(self.period, n + 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Counts what it receives.
    struct Counter {
        seen: Vec<(Time, u64)>,
    }

    impl Lp<u64> for Counter {
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            self.seen.push((ctx.now(), n));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn ticker_to_counter_pipeline() {
        let mut b = TopologyBuilder::new();
        let t = b.add_lp();
        let c = b.add_lp();
        b.connect(t, c, 1);
        let topology = b.build();
        let lps: Vec<Box<dyn Lp<u64>>> = vec![
            Box::new(Ticker { period: 10, count: 5 }),
            Box::new(Counter { seen: Vec::new() }),
        ];
        let outcome = SeqKernel::new().run(&topology, lps, 1_000);
        let counter = outcome.lps[1].as_any().downcast_ref::<Counter>().unwrap();
        // Ticks at 10,20,30,40,50; +1 link delay.
        assert_eq!(
            counter.seen,
            vec![(11, 0), (21, 1), (31, 2), (41, 3), (51, 4)]
        );
        assert_eq!(outcome.stats.events_delivered, 5);
        assert_eq!(outcome.stats.events_processed, 10); // 5 self + 5 payload
    }

    #[test]
    fn horizon_drops_late_events() {
        let mut b = TopologyBuilder::new();
        let t = b.add_lp();
        let c = b.add_lp();
        b.connect(t, c, 1);
        let topology = b.build();
        let lps: Vec<Box<dyn Lp<u64>>> = vec![
            Box::new(Ticker { period: 10, count: 100 }),
            Box::new(Counter { seen: Vec::new() }),
        ];
        let outcome = SeqKernel::new().run(&topology, lps, 35);
        let counter = outcome.lps[1].as_any().downcast_ref::<Counter>().unwrap();
        // Only ticks landing before t=35 arrive: 11, 21, 31.
        assert_eq!(counter.seen.len(), 3);
        assert!(outcome.stats.dropped_at_horizon > 0);
    }

    /// Two LPs bouncing a token around a cycle — terminates only because
    /// null messages advance the clocks to the horizon.
    struct Bouncer {
        bounces: u64,
    }

    impl Lp<u64> for Bouncer {
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            self.bounces += 1;
            ctx.send(0, 5, n + 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    struct Kicker;

    impl Lp<u64> for Kicker {
        fn init(&mut self, ctx: &mut Ctx<u64>) {
            ctx.send(0, 5, 0);
        }
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            ctx.send(0, 5, n + 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn cyclic_topology_terminates_via_null_messages() {
        let mut b = TopologyBuilder::new();
        let a = b.add_lp();
        let c = b.add_lp();
        b.connect(a, c, 5);
        b.connect(c, a, 5);
        let topology = b.build();
        let lps: Vec<Box<dyn Lp<u64>>> = vec![Box::new(Kicker), Box::new(Bouncer { bounces: 0 })];
        let outcome = SeqKernel::new().run(&topology, lps, 101);
        let bouncer = outcome.lps[1].as_any().downcast_ref::<Bouncer>().unwrap();
        // Token visits the bouncer at t = 5, 15, 25, …, 95 → 10 bounces.
        assert_eq!(bouncer.bounces, 10);
        assert!(outcome.stats.nulls_sent > 0, "cycles need null messages");
    }

    #[test]
    fn self_loop_channel_works() {
        // An LP feeding itself through an explicit channel (lookahead 5
        // matches Kicker's send delay).
        let mut b = TopologyBuilder::new();
        let a = b.add_lp();
        b.connect(a, a, 5);
        let topology = b.build();
        let lps: Vec<Box<dyn Lp<u64>>> = vec![Box::new(Kicker)];
        let outcome = SeqKernel::new().run(&topology, lps, 50);
        // Arrivals at 5, 10, …, 45 are processed; the send landing at 50
        // hits the horizon and is dropped.
        assert_eq!(outcome.stats.events_processed, 9);
        assert_eq!(outcome.stats.dropped_at_horizon, 1);
    }
}
