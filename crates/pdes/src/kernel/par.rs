//! The parallel kernel driver — the paper's Algorithm 2 generalized:
//! one HJ task per active LP, per-channel trylocks acquired in ascending
//! ID order, a claim flag per LP for task deduplication, and the full
//! null-message promise protocol for cyclic topologies.
//!
//! ## Safety argument (mirrors `des-core`'s HJ engine)
//!
//! * a channel's deque is touched only under that channel's registry
//!   lock (the sender pushes, the receiver pops);
//! * a channel's clock atomic has a single writer — the source LP's
//!   claim holder — and lock-free readers;
//! * an LP's core (behaviour, internal heap, promise ledger) is touched
//!   only by its claim holder;
//! * activity mirrors are SeqCst so the producer ↔ retiring-runner
//!   handoff cannot lose a wakeup.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_utils::Backoff;
use fault::{FaultPlan, RunCtl, SimError, StallSnapshot, Watchdog, WorkerSnapshot};
use hj::{HjRuntime, LockId, LockRegistry, Locker, Scope};

use crate::kernel::{check_shapes, promise_for, KernelStats, LpCore, RunOutcome, SelfEvent};
use crate::model::Lp;
use crate::topology::{LpId, Topology};
use crate::{Time, T_INF};

/// Default no-progress deadline (same rationale as `des-core`'s engines).
const DEFAULT_WATCHDOG: Duration = Duration::from_secs(10);

/// Bounded TRYLOCK retries per activation before giving the claim back.
const MAX_LOCK_RETRIES: u32 = 8;

/// The parallel driver.
pub struct ParKernel {
    runtime: Arc<HjRuntime>,
    fault: Arc<FaultPlan>,
    watchdog: Option<Duration>,
}

impl ParKernel {
    /// Driver on a fresh runtime with `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self::on_runtime(Arc::new(HjRuntime::new(workers)))
    }

    /// Driver on an existing runtime.
    pub fn on_runtime(runtime: Arc<HjRuntime>) -> Self {
        ParKernel {
            runtime,
            fault: Arc::new(FaultPlan::none()),
            watchdog: Some(DEFAULT_WATCHDOG),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.runtime.workers()
    }

    /// Install a fault plan (decision counters reset on every run).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Arc::new(plan);
        self
    }

    /// Set (or with `None` disable) the no-progress watchdog deadline.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.watchdog = deadline;
        self
    }

    /// Run `lps` over `topology` until quiescent at the given horizon.
    ///
    /// Panics on failure; [`ParKernel::try_run`] is the fallible form.
    pub fn run<E: Send>(
        &self,
        topology: &Topology,
        lps: Vec<Box<dyn Lp<E>>>,
        horizon: Time,
    ) -> RunOutcome<E> {
        match self.try_run(topology, lps, horizon) {
            Ok(outcome) => outcome,
            Err(err) => panic!("parallel kernel failed: {err}"),
        }
    }

    /// Run `lps` over `topology` until quiescent at the given horizon,
    /// surfacing task panics, stalls, and invariant violations as
    /// [`SimError`] instead of hanging or aborting the process.
    pub fn try_run<E: Send>(
        &self,
        topology: &Topology,
        lps: Vec<Box<dyn Lp<E>>>,
        horizon: Time,
    ) -> Result<RunOutcome<E>, SimError> {
        check_shapes(topology, &lps);
        assert!((1..T_INF).contains(&horizon));
        self.fault.reset();
        let ctl = Arc::new(RunCtl::new());
        let mut sim = ParSim::new(
            topology,
            lps,
            horizon,
            Arc::clone(&self.fault),
            Arc::clone(&ctl),
        );
        // Sequential seeding: run every LP's init and deliver the initial
        // emissions (no concurrency yet, so direct access is fine).
        sim.seed();
        let sim = sim; // freeze
        let watchdog = self.watchdog.map(|deadline| {
            let runtime = Arc::clone(&self.runtime);
            let fault = Arc::clone(&self.fault);
            let locks = Arc::clone(&sim.locks);
            let engine = format!("pdes-par[w={}]", self.runtime.workers());
            Watchdog::arm(Arc::clone(&ctl), deadline, move |stalled_for, ticks| {
                let obs = runtime.observe_scheduler();
                let mut notes = vec![format!(
                    "{} of {} workers parked",
                    obs.sleeping_workers,
                    obs.worker_queue_depths.len()
                )];
                if fault.is_active() {
                    notes.push(format!("fault injection active: {:?}", fault.injected()));
                }
                StallSnapshot {
                    engine: engine.clone(),
                    stalled_for,
                    progress_ticks: ticks,
                    workers: obs
                        .worker_queue_depths
                        .iter()
                        .enumerate()
                        .map(|(id, &depth)| WorkerSnapshot {
                            id,
                            state: "running".into(),
                            queue_depth: Some(depth),
                            ..WorkerSnapshot::default()
                        })
                        .collect(),
                    held_locks: (0..locks.len() as LockId)
                        .filter(|&l| locks.is_locked(l))
                        .map(|l| l as usize)
                        .collect(),
                    queue_depths: vec![obs.injector_depth],
                    links: Vec::new(),
                    workset_size: obs.injector_depth
                        + obs.worker_queue_depths.iter().sum::<usize>(),
                    notes,
                    null_waits: Vec::new(),
                    traces: Vec::new(),
                }
            })
        });
        let body = catch_unwind(AssertUnwindSafe(|| {
            self.runtime.finish(|scope| {
                for i in 0..topology.num_lps() {
                    if ctl.is_cancelled() {
                        break;
                    }
                    let id = LpId(i as u32);
                    let sim = &sim;
                    let claimed = sim.claim(id);
                    debug_assert!(claimed);
                    scope.spawn(move || pump(sim, scope, id, true));
                }
            });
        }));
        if let Some(wd) = watchdog {
            wd.disarm();
        }
        let error = match body {
            Ok(()) => ctl.take_error(),
            Err(payload) => Some(
                ctl.take_error()
                    .unwrap_or_else(|| SimError::from_panic(None, payload.as_ref())),
            ),
        };
        match error {
            None => Ok(sim.into_outcome()),
            Some(err) => {
                // RAII lockers release on unwind; a channel lock still held
                // after the scope drained is a leak.
                let leaked: Vec<LockId> = (0..sim.locks.len() as LockId)
                    .filter(|&l| sim.locks.is_locked(l))
                    .collect();
                if !leaked.is_empty() {
                    return Err(SimError::invariant(format!(
                        "channel locks {leaked:?} left held after failed run (original error: {err})"
                    )));
                }
                Err(err)
            }
        }
    }
}

struct PChannel<E> {
    /// Guarded by this channel's registry lock.
    deque: UnsafeCell<VecDeque<(Time, E)>>,
    /// Lower bound on future arrivals; single writer (src's claim holder).
    clock: AtomicU64,
    /// Mirror of the deque head timestamp (maintained under the lock).
    head: AtomicU64,
}

struct PLp<E> {
    claimed: AtomicBool,
    /// Guarded by `claimed`.
    core: UnsafeCell<LpCore<E>>,
    /// Mirror of the internal heap's head timestamp.
    internal_head: AtomicU64,
    /// Mirrors of `core.out_guarantee`.
    out_guarantee: Box<[AtomicU64]>,
    /// Input ∪ output channel lock IDs, ascending, deduplicated.
    lock_plan: Box<[LockId]>,
}

struct ParSim<'a, E> {
    topology: &'a Topology,
    horizon: Time,
    lps: Box<[PLp<E>]>,
    channels: Box<[PChannel<E>]>,
    /// Behind `Arc` so the watchdog's snapshot closure (which must be
    /// `'static`) can observe held locks while the run is in flight.
    locks: Arc<LockRegistry>,
    fault: Arc<FaultPlan>,
    ctl: Arc<RunCtl>,
    ties: AtomicU64,
    delivered: AtomicU64,
    processed: AtomicU64,
    self_scheduled: AtomicU64,
    nulls: AtomicU64,
    dropped: AtomicU64,
    runs: AtomicU64,
    lock_retries: AtomicU64,
    backoff_waits: AtomicU64,
}

// SAFETY: see the module-level safety argument.
unsafe impl<E: Send> Sync for ParSim<'_, E> {}

impl<'a, E: Send> ParSim<'a, E> {
    fn new(
        topology: &'a Topology,
        lps: Vec<Box<dyn Lp<E>>>,
        horizon: Time,
        fault: Arc<FaultPlan>,
        ctl: Arc<RunCtl>,
    ) -> Self {
        let plps: Box<[PLp<E>]> = lps
            .into_iter()
            .enumerate()
            .map(|(i, behavior)| {
                let id = LpId(i as u32);
                let lookaheads: Vec<Time> = topology
                    .outputs(id)
                    .iter()
                    .map(|&c| topology.channel(c).lookahead)
                    .collect();
                let n_out = lookaheads.len();
                let mut plan: Vec<LockId> = topology
                    .inputs(id)
                    .iter()
                    .chain(topology.outputs(id))
                    .map(|c| c.0)
                    .collect();
                plan.sort_unstable();
                plan.dedup();
                PLp {
                    claimed: AtomicBool::new(false),
                    core: UnsafeCell::new(LpCore::new(behavior, lookaheads)),
                    internal_head: AtomicU64::new(T_INF),
                    out_guarantee: (0..n_out).map(|_| AtomicU64::new(0)).collect(),
                    lock_plan: plan.into_boxed_slice(),
                }
            })
            .collect();
        let channels = (0..topology.num_channels())
            .map(|_| PChannel {
                deque: UnsafeCell::new(VecDeque::new()),
                clock: AtomicU64::new(0),
                head: AtomicU64::new(T_INF),
            })
            .collect();
        ParSim {
            topology,
            horizon,
            lps: plps,
            channels,
            locks: Arc::new(LockRegistry::new(topology.num_channels())),
            fault,
            ctl,
            ties: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            self_scheduled: AtomicU64::new(0),
            nulls: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            lock_retries: AtomicU64::new(0),
            backoff_waits: AtomicU64::new(0),
        }
    }

    /// Pre-parallel seeding (exclusive access).
    fn seed(&mut self) {
        for i in 0..self.topology.num_lps() {
            let id = LpId(i as u32);
            let core = self.lps[i].core.get_mut();
            core.ctx.reset(0);
            core.behavior.init(&mut core.ctx);
            let (inserted, dropped_self) = core.absorb_self_schedules(self.horizon);
            *self.self_scheduled.get_mut() += inserted;
            *self.dropped.get_mut() += dropped_self;
            self.lps[i]
                .internal_head
                .store(core.internal_head(), Ordering::SeqCst);
            let sends = std::mem::take(&mut core.ctx.sends);
            for (out_ix, at, event) in sends {
                let ch_id = self.topology.outputs(id)[out_ix];
                if at >= self.horizon {
                    *self.dropped.get_mut() += 1;
                    continue;
                }
                *self.delivered.get_mut() += 1;
                let ch = &mut self.channels[ch_id.index()];
                let deque = ch.deque.get_mut();
                if deque.is_empty() {
                    ch.head.store(at, Ordering::SeqCst);
                }
                deque.push_back((at, event));
                let clock = ch.clock.get_mut();
                *clock = (*clock).max(at);
            }
        }
    }

    #[inline]
    fn claim(&self, id: LpId) -> bool {
        self.lps[id.index()]
            .claimed
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    #[inline]
    fn unclaim(&self, id: LpId) {
        self.lps[id.index()].claimed.store(false, Ordering::SeqCst);
    }

    fn input_clock(&self, id: LpId) -> Time {
        self.topology
            .inputs(id)
            .iter()
            .map(|&c| self.channels[c.index()].clock.load(Ordering::SeqCst))
            .min()
            .unwrap_or(T_INF)
    }

    /// Lock-free activity check (same structure as the sequential one).
    fn is_active(&self, id: LpId) -> bool {
        let clock = self.input_clock(id);
        for &c in self.topology.inputs(id) {
            let h = self.channels[c.index()].head.load(Ordering::SeqCst);
            if h != T_INF && h <= clock {
                return true;
            }
        }
        let lp = &self.lps[id.index()];
        let internal = lp.internal_head.load(Ordering::SeqCst);
        if internal != T_INF && internal <= clock {
            return true;
        }
        let bound = clock.min(internal);
        for (out_ix, &c) in self.topology.outputs(id).iter().enumerate() {
            let g = promise_for(bound, self.topology.channel(c).lookahead, self.horizon);
            if g > lp.out_guarantee[out_ix].load(Ordering::SeqCst) {
                return true;
            }
        }
        false
    }

    fn into_outcome(self) -> RunOutcome<E> {
        let stats = KernelStats {
            events_delivered: self.delivered.load(Ordering::Relaxed),
            events_processed: self.processed.load(Ordering::Relaxed),
            self_scheduled: self.self_scheduled.load(Ordering::Relaxed),
            nulls_sent: self.nulls.load(Ordering::Relaxed),
            dropped_at_horizon: self.dropped.load(Ordering::Relaxed),
            lp_runs: self.runs.load(Ordering::Relaxed),
            ties_observed: self.ties.load(Ordering::Relaxed),
            lock_retries: self.lock_retries.load(Ordering::Relaxed),
            backoff_waits: self.backoff_waits.load(Ordering::Relaxed),
        };
        for (ix, ch) in self.channels.iter().enumerate() {
            debug_assert_eq!(
                ch.clock.load(Ordering::SeqCst),
                T_INF,
                "channel {ix} never closed"
            );
            debug_assert_eq!(
                ch.head.load(Ordering::SeqCst),
                T_INF,
                "channel {ix} has undrained events"
            );
        }
        let lps = self
            .lps
            .into_vec()
            .into_iter()
            .map(|lp| lp.core.into_inner().behavior)
            .collect();
        RunOutcome { lps, stats }
    }
}

/// Task body with the claim protocol (see `des-core`'s HJ engine).
fn pump<'s, 'e, E: Send>(
    sim: &'e ParSim<'e, E>,
    scope: &'s Scope<'s, 'e>,
    id: LpId,
    pre_claimed: bool,
) {
    if !pre_claimed && !sim.claim(id) {
        return; // the claim holder's exit re-check covers us
    }
    if sim.fault.is_active() {
        if sim.fault.should_panic_spawn() {
            sim.ctl.record_error(SimError::TaskPanicked {
                node: Some(id.index()),
                payload: "injected task panic".into(),
            });
            sim.ctl.cancel();
            panic!("fault injection: task panic at LP {}", id.index());
        }
        if let Some(delay) = sim.fault.straggler_delay() {
            std::thread::sleep(delay);
        }
    }
    run_claimed(sim, scope, id);
    sim.unclaim(id);
    if sim.ctl.is_cancelled() {
        return;
    }
    if sim.is_active(id) && sim.claim(id) {
        scope.spawn(move || pump(sim, scope, id, true));
    }
}

/// Acquire the full lock plan with bounded retry-with-backoff. Injected
/// trylock failures count against the same retry budget as organic
/// contention. Returns `false` if the budget is exhausted or the run was
/// cancelled (the caller gives the claim back; the exit re-check retries).
fn acquire_locks<E: Send>(
    sim: &ParSim<'_, E>,
    locker: &mut Locker<'_>,
    plan: &[LockId],
) -> bool {
    let backoff = Backoff::new();
    for attempt in 0..=MAX_LOCK_RETRIES {
        if sim.ctl.is_cancelled() {
            return false;
        }
        if attempt > 0 {
            sim.lock_retries.fetch_add(1, Ordering::Relaxed);
        }
        let injected = sim.fault.is_active() && sim.fault.should_fail_trylock();
        if !injected && locker.try_lock_all(plan.iter().copied()).is_ok() {
            return true;
        }
        if attempt < MAX_LOCK_RETRIES {
            sim.backoff_waits.fetch_add(1, Ordering::Relaxed);
            backoff.snooze();
        }
    }
    false
}

fn run_claimed<'s, 'e, E: Send>(sim: &'e ParSim<'e, E>, scope: &'s Scope<'s, 'e>, id: LpId) {
    if sim.fault.is_wedged() {
        // Deliberate wedge: hold the claim without progressing until the
        // watchdog cancels the run.
        while !sim.ctl.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        return;
    }
    if sim.ctl.is_cancelled() {
        return;
    }
    let lp = &sim.lps[id.index()];
    let mut locker = sim.locks.locker();
    if !acquire_locks(sim, &mut locker, &lp.lock_plan) {
        return; // never block; the exit re-check retries
    }
    sim.runs.fetch_add(1, Ordering::Relaxed);

    // SAFETY: we hold the claim.
    let core = unsafe { &mut *lp.core.get() };
    let inputs = sim.topology.inputs(id);
    let outputs = sim.topology.outputs(id);

    loop {
        let clock = sim.input_clock(id);
        // Earliest safe event across input channels and the self heap.
        let mut best: Option<(Time, Option<usize>)> = None;
        for (ix, &c) in inputs.iter().enumerate() {
            let h = sim.channels[c.index()].head.load(Ordering::SeqCst);
            if h != T_INF && h <= clock && best.is_none_or(|(bt, _)| h < bt) {
                best = Some((h, Some(ix)));
            }
        }
        let ih = core.internal_head();
        if ih != T_INF && ih <= clock && best.is_none_or(|(bt, _)| ih < bt) {
            best = Some((ih, None));
        }
        let Some((at, which)) = best else { break };
        let event = match which {
            Some(ix) => {
                let ch = &sim.channels[inputs[ix].index()];
                // SAFETY: we hold this channel's lock.
                let deque = unsafe { &mut *ch.deque.get() };
                let Some((_, event)) = deque.pop_front() else {
                    sim.ctl.record_error(SimError::invariant(format!(
                        "LP {}: channel {} head mirror says non-empty but deque is empty",
                        id.index(),
                        inputs[ix].index()
                    )));
                    sim.ctl.cancel();
                    return;
                };
                ch.head
                    .store(deque.front().map_or(T_INF, |&(t, _)| t), Ordering::SeqCst);
                event
            }
            None => match core.internal.pop() {
                Some(se) => se.event,
                None => {
                    sim.ctl.record_error(SimError::invariant(format!(
                        "LP {}: internal head mirror says non-empty but heap is empty",
                        id.index()
                    )));
                    sim.ctl.cancel();
                    return;
                }
            },
        };
        sim.processed.fetch_add(1, Ordering::Relaxed);
        sim.ctl.tick();
        if core.note_handled(at) {
            sim.ties.fetch_add(1, Ordering::Relaxed);
        }
        core.ctx.reset(at);
        core.behavior.handle(event, &mut core.ctx);

        // Absorb self-schedules.
        let (inserted, dropped_self) = core.absorb_self_schedules(sim.horizon);
        sim.self_scheduled.fetch_add(inserted, Ordering::Relaxed);
        sim.dropped.fetch_add(dropped_self, Ordering::Relaxed);

        // Deliver sends (we hold all our output-channel locks).
        for (out_ix, send_at, payload) in core.ctx.sends.drain(..) {
            if send_at >= sim.horizon {
                sim.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            sim.delivered.fetch_add(1, Ordering::Relaxed);
            let ch = &sim.channels[outputs[out_ix].index()];
            // SAFETY: we hold this channel's lock.
            let deque = unsafe { &mut *ch.deque.get() };
            debug_assert!(deque.back().is_none_or(|&(t, _)| t <= send_at));
            if deque.is_empty() {
                ch.head.store(send_at, Ordering::SeqCst);
            }
            deque.push_back((send_at, payload));
            ch.clock.fetch_max(send_at, Ordering::SeqCst);
        }
    }
    lp.internal_head.store(core.internal_head(), Ordering::SeqCst);

    // Refresh promises (null messages).
    let bound = sim.input_clock(id).min(core.internal_head());
    for (out_ix, &c) in outputs.iter().enumerate() {
        let g = promise_for(bound, sim.topology.channel(c).lookahead, sim.horizon);
        if g > core.out_guarantee[out_ix] {
            core.out_guarantee[out_ix] = g;
            lp.out_guarantee[out_ix].store(g, Ordering::SeqCst);
            sim.channels[c.index()].clock.fetch_max(g, Ordering::SeqCst);
            sim.nulls.fetch_add(1, Ordering::Relaxed);
            sim.ctl.tick();
        }
    }

    locker.release_all();

    if sim.ctl.is_cancelled() {
        return;
    }
    // Downstream LPs may have become active (payloads or promises).
    for &c in outputs {
        let dst = sim.topology.channel(c).dst;
        if dst != id && sim.is_active(dst) && sim.claim(dst) {
            scope.spawn(move || pump(sim, scope, dst, true));
        }
    }
}

// `SelfEvent` is used via `core.internal`; silence the unused-import lint
// on builds where inlining hides it.
#[allow(unused_imports)]
use SelfEvent as _SelfEventUsed;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SeqKernel;
    use crate::model::Ctx;
    use crate::topology::TopologyBuilder;
    use std::any::Any;

    struct Ticker {
        period: Time,
        count: u64,
    }

    impl Lp<u64> for Ticker {
        fn init(&mut self, ctx: &mut Ctx<u64>) {
            if self.count > 0 {
                ctx.schedule(self.period, 0);
            }
        }
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            ctx.send(0, 1, n);
            if n + 1 < self.count {
                ctx.schedule(self.period, n + 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    struct Counter {
        seen: Vec<(Time, u64)>,
    }

    impl Lp<u64> for Counter {
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            self.seen.push((ctx.now(), n));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn pipeline_lps() -> Vec<Box<dyn Lp<u64>>> {
        vec![
            Box::new(Ticker { period: 3, count: 50 }),
            Box::new(Counter { seen: Vec::new() }),
        ]
    }

    #[test]
    fn parallel_matches_sequential_on_pipeline() {
        let mut b = TopologyBuilder::new();
        let t = b.add_lp();
        let c = b.add_lp();
        b.connect(t, c, 1);
        let topology = b.build();
        let seq = SeqKernel::new().run(&topology, pipeline_lps(), 1_000);
        let par = ParKernel::new(2).run(&topology, pipeline_lps(), 1_000);
        let seq_seen = &seq.lps[1].as_any().downcast_ref::<Counter>().unwrap().seen;
        let par_seen = &par.lps[1].as_any().downcast_ref::<Counter>().unwrap().seen;
        assert_eq!(seq_seen, par_seen);
        assert_eq!(seq.stats.events_delivered, par.stats.events_delivered);
        assert_eq!(seq.stats.events_processed, par.stats.events_processed);
    }

    #[test]
    fn parallel_terminates_on_cycles() {
        struct Relay(u64);
        impl Lp<u64> for Relay {
            fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
                self.0 += 1;
                ctx.send(0, 4, n + 1);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        struct Seed;
        impl Lp<u64> for Seed {
            fn init(&mut self, ctx: &mut Ctx<u64>) {
                ctx.send(0, 4, 0);
            }
            fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
                ctx.send(0, 4, n + 1);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        // Ring of 3: Seed → Relay → Relay → Seed.
        let mut b = TopologyBuilder::new();
        let s = b.add_lp();
        let r1 = b.add_lp();
        let r2 = b.add_lp();
        b.connect(s, r1, 4);
        b.connect(r1, r2, 4);
        b.connect(r2, s, 4);
        let topology = b.build();
        let mk = || -> Vec<Box<dyn Lp<u64>>> {
            vec![Box::new(Seed), Box::new(Relay(0)), Box::new(Relay(0))]
        };
        let seq = SeqKernel::new().run(&topology, mk(), 500);
        let par = ParKernel::new(3).run(&topology, mk(), 500);
        let hops = |o: &RunOutcome<u64>| {
            (
                o.lps[1].as_any().downcast_ref::<Relay>().unwrap().0,
                o.lps[2].as_any().downcast_ref::<Relay>().unwrap().0,
            )
        };
        assert_eq!(hops(&seq), hops(&par));
        assert_eq!(seq.stats.events_delivered, par.stats.events_delivered);
        assert!(par.stats.nulls_sent > 0);
    }
}
