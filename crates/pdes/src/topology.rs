//! LP/channel topology.
//!
//! Channels are directed, FIFO, and carry a **lookahead**: a static lower
//! bound (≥ 1 tick) on the delay between the event that triggers a send
//! and the send's timestamp. Positive lookahead on every channel is what
//! lets null messages advance clocks around cycles (Misra \[21\]).

use crate::Time;

/// Index of a logical process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LpId(pub u32);

impl LpId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub u32);

impl ChannelId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One directed channel.
#[derive(Debug, Clone, Copy)]
pub struct Channel {
    pub src: LpId,
    pub dst: LpId,
    /// Minimum trigger-to-timestamp delay for events sent here (≥ 1).
    pub lookahead: Time,
    /// Position of this channel in `src`'s output list.
    pub out_ix: usize,
    /// Position of this channel in `dst`'s input list.
    pub in_ix: usize,
}

/// An immutable LP/channel graph (cycles allowed).
#[derive(Debug, Clone)]
pub struct Topology {
    num_lps: usize,
    channels: Vec<Channel>,
    outputs: Vec<Vec<ChannelId>>,
    inputs: Vec<Vec<ChannelId>>,
}

impl Topology {
    pub fn num_lps(&self) -> usize {
        self.num_lps
    }

    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    #[inline]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Output channels of an LP, in connection order.
    pub fn outputs(&self, lp: LpId) -> &[ChannelId] {
        &self.outputs[lp.index()]
    }

    /// Input channels of an LP, in connection order.
    pub fn inputs(&self, lp: LpId) -> &[ChannelId] {
        &self.inputs[lp.index()]
    }

    /// Iterate over all channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }
}

/// Incremental topology constructor.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    num_lps: usize,
    channels: Vec<Channel>,
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one more LP; returns its id. (LP behaviours are supplied
    /// separately to the kernel, index-aligned.)
    pub fn add_lp(&mut self) -> LpId {
        let id = LpId(u32::try_from(self.num_lps).expect("too many LPs"));
        self.num_lps += 1;
        id
    }

    /// Connect `src → dst` with the given lookahead (≥ 1 tick).
    ///
    /// # Panics
    /// If the lookahead is zero or an endpoint is unknown.
    pub fn connect(&mut self, src: LpId, dst: LpId, lookahead: Time) -> ChannelId {
        assert!(lookahead >= 1, "conservative PDES needs positive lookahead");
        assert!(src.index() < self.num_lps && dst.index() < self.num_lps);
        let id = ChannelId(u32::try_from(self.channels.len()).expect("too many channels"));
        self.channels.push(Channel {
            src,
            dst,
            lookahead,
            out_ix: usize::MAX, // filled in build()
            in_ix: usize::MAX,
        });
        id
    }

    /// Freeze the topology.
    pub fn build(mut self) -> Topology {
        let mut outputs: Vec<Vec<ChannelId>> = vec![Vec::new(); self.num_lps];
        let mut inputs: Vec<Vec<ChannelId>> = vec![Vec::new(); self.num_lps];
        for (ix, ch) in self.channels.iter_mut().enumerate() {
            let id = ChannelId(ix as u32);
            ch.out_ix = outputs[ch.src.index()].len();
            outputs[ch.src.index()].push(id);
            ch.in_ix = inputs[ch.dst.index()].len();
            inputs[ch.dst.index()].push(id);
        }
        Topology {
            num_lps: self.num_lps,
            channels: self.channels,
            outputs,
            inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_port_indices() {
        let mut b = TopologyBuilder::new();
        let a = b.add_lp();
        let c = b.add_lp();
        let d = b.add_lp();
        let ch1 = b.connect(a, d, 5);
        let ch2 = b.connect(c, d, 3);
        let ch3 = b.connect(a, c, 2);
        let t = b.build();
        assert_eq!(t.num_lps(), 3);
        assert_eq!(t.num_channels(), 3);
        assert_eq!(t.channel(ch1).in_ix, 0);
        assert_eq!(t.channel(ch2).in_ix, 1);
        assert_eq!(t.channel(ch1).out_ix, 0);
        assert_eq!(t.channel(ch3).out_ix, 1);
        assert_eq!(t.inputs(d), &[ch1, ch2]);
        assert_eq!(t.outputs(a), &[ch1, ch3]);
    }

    #[test]
    fn cycles_are_allowed() {
        let mut b = TopologyBuilder::new();
        let a = b.add_lp();
        let c = b.add_lp();
        b.connect(a, c, 1);
        b.connect(c, a, 1);
        let t = b.build();
        assert_eq!(t.num_channels(), 2);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_lp();
        let c = b.add_lp();
        b.connect(a, c, 0);
    }

    #[test]
    fn self_loops_are_allowed() {
        // A self-loop models an LP's delayed feedback to itself.
        let mut b = TopologyBuilder::new();
        let a = b.add_lp();
        let ch = b.connect(a, a, 4);
        let t = b.build();
        assert_eq!(t.channel(ch).src, t.channel(ch).dst);
    }
}
