//! # pdes-kernel — a generic conservative PDES kernel
//!
//! The paper's conclusion (§6) proposes applying the same HJlib approach
//! to "larger-scale DES application\[s\], such as wireless mobile ad hoc
//! network simulation". This crate builds the substrate that direction
//! needs: a **domain-independent** Chandy–Misra kernel with the *full*
//! null-message protocol of Chandy & Misra \[6\] / Misra \[21\] —
//! timestamped lower-bound promises that keep clocks advancing even
//! through **cyclic** topologies (the logic-circuit case in `des-core`
//! only needs the degenerate end-of-stream NULL because circuits are
//! DAGs).
//!
//! * [`model`] — the [`model::Lp`] trait: user-defined logical processes
//!   exchanging typed events over channels with positive lookahead.
//! * [`topology`] — LP/channel graph construction (cycles allowed).
//! * [`kernel`] — two drivers with identical semantics:
//!   [`kernel::SeqKernel`] (workset) and [`kernel::ParKernel`]
//!   (HJ async/finish tasks + per-channel trylocks, the paper's
//!   Algorithm 2 generalized).
//! * [`rng`] — deterministic counter-based randomness so stochastic
//!   models stay reproducible across engines and thread counts.
//! * [`queueing`] — an open queueing-network model (sources, FIFO
//!   servers, probabilistic routers, sinks) with feedback loops: the
//!   "communication system" workload family the paper's introduction
//!   motivates. Timestamps carry per-packet sub-tick jitter so
//!   trajectories are tie-free, which is what makes the stochastic model
//!   bit-identical across kernels and worker counts
//!   (`KernelStats::ties_observed` checks the assumption).
//!
//! ```
//! use pdes::queueing::{self, NetworkSpec};
//! use pdes::kernel::{ParKernel, SeqKernel};
//!
//! let spec = NetworkSpec::tandem(3, 0.7, 42);
//! let seq = queueing::run(&spec, &SeqKernel::new(), 5_000);
//! let par = queueing::run(&spec, &ParKernel::new(2), 5_000);
//! assert_eq!(seq.observables(), par.observables());
//! ```

pub mod kernel;
pub mod model;
pub mod queueing;
pub mod rng;
pub mod topology;

pub use kernel::{KernelStats, ParKernel, RunOutcome, SeqKernel};
pub use model::{Ctx, Lp};
pub use topology::{ChannelId, LpId, Topology, TopologyBuilder};

/// Simulated time, in ticks.
pub type Time = u64;

/// "Never": the timestamp of a closed channel.
pub const T_INF: Time = u64::MAX;
