//! An open queueing-network model — the "communication system" workload
//! family the paper's introduction motivates (and its §6 future-work
//! target, network simulation), built on the generic kernel.
//!
//! LPs: Poisson-ish [`Source`]s, FIFO exponential [`Server`]s,
//! probabilistic [`Router`]s (routing decided by a pure hash of the
//! packet id and visit time, so trajectories are engine-independent), and latency-
//! recording [`Sink`]s. Feedback loops are supported — that is exactly
//! what the kernel's null-message protocol exists for.

use std::any::Any;

use crate::kernel::{KernelStats, ParKernel, RunOutcome, SeqKernel};
use crate::model::{Ctx, Lp};
use crate::rng::DetRng;
use crate::topology::{LpId, Topology, TopologyBuilder};
use crate::Time;

/// Sub-tick resolution: all model times are in units of `1/TICK` of a
/// tick. Each packet's birth gets a unique 32-bit sub-tick jitter, and
/// every other duration is a whole number of ticks, so two *different*
/// packets can only produce equal timestamps at one LP if their jitters
/// collide exactly (probability ≈ n²/2³³) — the kernel counts such ties
/// in `KernelStats::ties_observed`, and tie-free runs are
/// engine-deterministic.
pub const TICK: u64 = 1 << 32;

/// Sub-tick jitter for a packet id (pure hash).
#[inline]
fn jitter(packet_id: u64) -> u64 {
    let mut z = packet_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93;
    z ^= z >> 32;
    z & (TICK - 1)
}

/// The network event: one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    pub id: u64,
    pub born: Time,
}

/// Internal token used by sources to pace themselves.
const ARRIVAL_TOKEN: Packet = Packet { id: u64::MAX, born: 0 };

/// Generates `count` packets with exponential interarrival times.
pub struct Source {
    rng: DetRng,
    mean_interarrival: f64,
    remaining: u64,
    next_id: u64,
    latency: Time,
}

impl Source {
    pub fn new(seed: u64, mean_interarrival: f64, count: u64, id_base: u64, latency: Time) -> Self {
        Source {
            rng: DetRng::new(seed),
            mean_interarrival,
            remaining: count,
            next_id: id_base,
            latency,
        }
    }
}

impl Lp<Packet> for Source {
    fn init(&mut self, ctx: &mut Ctx<Packet>) {
        if self.remaining > 0 {
            let dt = self.rng.exp_ticks(self.mean_interarrival) * TICK;
            ctx.schedule(dt, ARRIVAL_TOKEN);
        }
    }

    fn handle(&mut self, _token: Packet, ctx: &mut Ctx<Packet>) {
        let packet = Packet {
            id: self.next_id,
            born: ctx.now(),
        };
        self.next_id += 1;
        // Whole ticks of link latency plus the packet's unique sub-tick
        // jitter: this is what keeps trajectories tie-free.
        ctx.send(0, self.latency * TICK + jitter(packet.id), packet);
        self.remaining -= 1;
        if self.remaining > 0 {
            let dt = self.rng.exp_ticks(self.mean_interarrival) * TICK;
            ctx.schedule(dt, ARRIVAL_TOKEN);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A single FIFO server with exponential service times. Service duration
/// is a pure function of the packet id, so the trajectory does not depend
/// on engine scheduling.
pub struct Server {
    seed: u64,
    mean_service: f64,
    latency: Time,
    busy_until: Time,
    /// Total ticks spent serving (for utilization checks).
    pub busy_ticks: u64,
    /// Packets served.
    pub served: u64,
}

impl Server {
    pub fn new(seed: u64, mean_service: f64, latency: Time) -> Self {
        Server {
            seed,
            mean_service,
            latency,
            busy_until: 0,
            busy_ticks: 0,
            served: 0,
        }
    }

    /// Service duration in sub-ticks: whole ticks from the exponential
    /// draw plus a per-(server, packet) sub-tick jitter. The jitter is
    /// load-bearing: a busy server's departure times are chained
    /// (`busy_until += service`), so without it every packet in a busy
    /// period would inherit the first packet's sub-tick residue and
    /// downstream timestamp ties would become whole-tick coincidences.
    fn service_time(&self, packet: Packet) -> u64 {
        // Counter-based: one fresh stream per (server, packet).
        let mut rng = DetRng::new(self.seed ^ packet.id.wrapping_mul(0xA24B_AED4_963E_E407));
        rng.exp_ticks(self.mean_service) * TICK + (rng.next_u64() & (TICK - 1))
    }
}

impl Lp<Packet> for Server {
    fn handle(&mut self, packet: Packet, ctx: &mut Ctx<Packet>) {
        let start = self.busy_until.max(ctx.now());
        let service = self.service_time(packet);
        self.busy_until = start + service;
        self.busy_ticks += service;
        self.served += 1;
        // Departure (completion) plus link latency; `busy_until > now`
        // always, so the delay clears the channel lookahead (latency + 1).
        let delay = self.busy_until - ctx.now() + self.latency * TICK;
        ctx.send(0, delay, packet);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Routes each packet to one output, chosen by hashing the packet id
/// against cumulative probabilities.
pub struct Router {
    seed: u64,
    /// Cumulative probability per output (last must be 1.0).
    cumulative: Vec<f64>,
    latency: Time,
}

impl Router {
    pub fn new(seed: u64, probabilities: &[f64], latency: Time) -> Self {
        let mut cumulative = Vec::with_capacity(probabilities.len());
        let mut acc = 0.0;
        for &p in probabilities {
            acc += p;
            cumulative.push(acc);
        }
        assert!(
            (acc - 1.0).abs() < 1e-9,
            "routing probabilities must sum to 1"
        );
        Router {
            seed,
            cumulative,
            latency,
        }
    }

    fn pick(&self, packet: Packet, now: Time) -> usize {
        // Mix in the visit time: a packet revisiting this router (feedback
        // loop) must draw afresh each time, yet the decision stays a pure
        // function of simulation state, hence engine-independent.
        let mut rng = DetRng::new(
            self.seed
                ^ packet.id.wrapping_mul(0x9FB2_1C65_1E98_DF25)
                ^ now.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        let u = rng.uniform();
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

impl Lp<Packet> for Router {
    fn handle(&mut self, packet: Packet, ctx: &mut Ctx<Packet>) {
        let out = self.pick(packet, ctx.now());
        ctx.send(out, self.latency * TICK, packet);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Absorbs packets and records latency statistics.
#[derive(Debug, Default)]
pub struct Sink {
    pub received: u64,
    pub total_latency: u64,
    pub max_latency: u64,
    pub last_arrival: Time,
}

impl Sink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean end-to-end latency of the absorbed packets, in ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.received as f64 / TICK as f64
        }
    }
}

impl Lp<Packet> for Sink {
    fn handle(&mut self, packet: Packet, ctx: &mut Ctx<Packet>) {
        let latency = ctx.now() - packet.born;
        self.received += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.last_arrival = ctx.now();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// An instantiated network: topology, behaviours, and sink LP ids.
pub type NetworkInstance = (Topology, Vec<Box<dyn Lp<Packet>>>, Vec<LpId>);

/// A network blueprint (re-instantiable, since a run consumes the LPs).
pub struct NetworkSpec {
    pub name: &'static str,
    build: Box<dyn Fn() -> NetworkInstance + Send + Sync>,
}

impl NetworkSpec {
    /// Instantiate fresh LPs for one run.
    pub fn instantiate(&self) -> NetworkInstance {
        (self.build)()
    }

    /// `source → server × k → sink`, each server at the given utilization.
    pub fn tandem(k: usize, utilization: f64, seed: u64) -> Self {
        assert!(k >= 1 && utilization > 0.0 && utilization < 1.0);
        let mean_service = 20.0;
        let mean_interarrival = mean_service / utilization;
        NetworkSpec {
            name: "tandem",
            build: Box::new(move || {
                let mut b = TopologyBuilder::new();
                let source = b.add_lp();
                let servers: Vec<LpId> = (0..k).map(|_| b.add_lp()).collect();
                let sink = b.add_lp();
                let latency = 2;
                b.connect(source, servers[0], latency * TICK);
                for w in servers.windows(2) {
                    b.connect(w[0], w[1], (latency + 1) * TICK); // server lookahead
                }
                b.connect(servers[k - 1], sink, (latency + 1) * TICK);
                let topology = b.build();
                let mut lps: Vec<Box<dyn Lp<Packet>>> = Vec::new();
                lps.push(Box::new(Source::new(seed, mean_interarrival, 400, 0, latency)));
                for (i, _) in servers.iter().enumerate() {
                    lps.push(Box::new(Server::new(
                        seed ^ (i as u64 + 1) << 17,
                        mean_service,
                        latency,
                    )));
                }
                lps.push(Box::new(Sink::new()));
                (topology, lps, vec![sink])
            }),
        }
    }

    /// `source → server → router →(p_loop) server (feedback) | sink`.
    /// Cyclic: exercises the null-message protocol.
    pub fn feedback(p_loop: f64, seed: u64) -> Self {
        assert!((0.0..0.9).contains(&p_loop));
        NetworkSpec {
            name: "feedback",
            build: Box::new(move || {
                let mut b = TopologyBuilder::new();
                let source = b.add_lp();
                let server = b.add_lp();
                let router = b.add_lp();
                let sink = b.add_lp();
                let latency = 2;
                b.connect(source, server, latency * TICK);
                b.connect(server, router, (latency + 1) * TICK);
                b.connect(router, sink, latency * TICK); // router output 0: exit
                b.connect(router, server, latency * TICK); // router output 1: loop
                let topology = b.build();
                let lps: Vec<Box<dyn Lp<Packet>>> = vec![
                    Box::new(Source::new(seed, 60.0, 300, 0, latency)),
                    Box::new(Server::new(seed ^ 0xABCD, 20.0, latency)),
                    Box::new(Router::new(seed ^ 0x1234, &[1.0 - p_loop, p_loop], latency)),
                    Box::new(Sink::new()),
                ];
                (topology, lps, vec![sink])
            }),
        }
    }

    /// A ring of `k` servers: packets enter at server 0, hop around the
    /// ring, and exit with probability `p_exit` at each hop — `k` cycles'
    /// worth of null-message traffic.
    pub fn ring(k: usize, p_exit: f64, seed: u64) -> Self {
        assert!(k >= 2 && (0.1..=1.0).contains(&p_exit));
        NetworkSpec {
            name: "ring",
            build: Box::new(move || {
                let mut b = TopologyBuilder::new();
                let source = b.add_lp();
                let servers: Vec<LpId> = (0..k).map(|_| b.add_lp()).collect();
                let routers: Vec<LpId> = (0..k).map(|_| b.add_lp()).collect();
                let sink = b.add_lp();
                let latency = 2;
                b.connect(source, servers[0], latency * TICK);
                for i in 0..k {
                    b.connect(servers[i], routers[i], (latency + 1) * TICK);
                    // Router output 0: exit to the sink.
                    b.connect(routers[i], sink, latency * TICK);
                    // Router output 1: continue around the ring.
                    b.connect(routers[i], servers[(i + 1) % k], latency * TICK);
                }
                let topology = b.build();
                let mut lps: Vec<Box<dyn Lp<Packet>>> = Vec::new();
                lps.push(Box::new(Source::new(seed, 80.0, 250, 0, latency)));
                for i in 0..k {
                    lps.push(Box::new(Server::new(seed ^ ((i as u64 + 1) << 9), 15.0, latency)));
                }
                for i in 0..k {
                    lps.push(Box::new(Router::new(
                        seed ^ ((i as u64 + 77) << 13),
                        &[p_exit, 1.0 - p_exit],
                        latency,
                    )));
                }
                lps.push(Box::new(Sink::new()));
                (topology, lps, vec![sink])
            }),
        }
    }

    /// A small Jackson-style open network: an entry split into two
    /// branches with cross-routing into a shared third stage — the
    /// classic multi-path topology of queueing-network theory.
    pub fn jackson(seed: u64) -> Self {
        NetworkSpec {
            name: "jackson",
            build: Box::new(move || {
                let mut b = TopologyBuilder::new();
                let src = b.add_lp();
                let s1 = b.add_lp();
                let s2 = b.add_lp();
                let s3 = b.add_lp();
                let r0 = b.add_lp(); // entry split
                let r1 = b.add_lp(); // after s1: to s3 or to s2
                let r2 = b.add_lp(); // after s2: to sink or to s3
                let sink = b.add_lp();
                let latency = 2;
                b.connect(src, r0, latency * TICK);
                b.connect(r0, s1, latency * TICK);
                b.connect(r0, s2, latency * TICK);
                b.connect(s1, r1, (latency + 1) * TICK);
                b.connect(r1, s3, latency * TICK);
                b.connect(r1, s2, latency * TICK); // cross edge
                b.connect(s2, r2, (latency + 1) * TICK);
                b.connect(r2, sink, latency * TICK);
                b.connect(r2, s3, latency * TICK);
                b.connect(s3, sink, (latency + 1) * TICK);
                let topology = b.build();
                let lps: Vec<Box<dyn Lp<Packet>>> = vec![
                    Box::new(Source::new(seed, 40.0, 350, 0, latency)),
                    Box::new(Server::new(seed ^ 0x11, 14.0, latency)),
                    Box::new(Server::new(seed ^ 0x22, 16.0, latency)),
                    Box::new(Server::new(seed ^ 0x33, 12.0, latency)),
                    Box::new(Router::new(seed ^ 0x44, &[0.5, 0.5], latency)),
                    Box::new(Router::new(seed ^ 0x55, &[0.7, 0.3], latency)),
                    Box::new(Router::new(seed ^ 0x66, &[0.6, 0.4], latency)),
                    Box::new(Sink::new()),
                ];
                (topology, lps, vec![sink])
            }),
        }
    }

    /// Two sources feeding two parallel servers through a load-balancing
    /// router, merging into one sink — a small "mesh".
    pub fn fork_join(seed: u64) -> Self {
        NetworkSpec {
            name: "fork_join",
            build: Box::new(move || {
                let mut b = TopologyBuilder::new();
                let src_a = b.add_lp();
                let src_b = b.add_lp();
                let balancer = b.add_lp();
                let s1 = b.add_lp();
                let s2 = b.add_lp();
                let sink = b.add_lp();
                let latency = 2;
                b.connect(src_a, balancer, latency * TICK);
                b.connect(src_b, balancer, latency * TICK);
                b.connect(balancer, s1, latency * TICK);
                b.connect(balancer, s2, latency * TICK);
                b.connect(s1, sink, (latency + 1) * TICK);
                b.connect(s2, sink, (latency + 1) * TICK);
                let topology = b.build();
                let lps: Vec<Box<dyn Lp<Packet>>> = vec![
                    Box::new(Source::new(seed, 50.0, 200, 0, latency)),
                    Box::new(Source::new(seed ^ 0xFEED, 70.0, 200, 1_000_000, latency)),
                    Box::new(Router::new(seed ^ 0xBEE, &[0.5, 0.5], latency)),
                    Box::new(Server::new(seed ^ 1, 18.0, latency)),
                    Box::new(Server::new(seed ^ 2, 18.0, latency)),
                    Box::new(Sink::new()),
                ];
                (topology, lps, vec![sink])
            }),
        }
    }
}

/// Deterministic observables: (events delivered, events processed,
/// per-sink (received, total latency, max latency), per-server
/// (served, busy ticks)).
pub type NetworkObservables = (u64, u64, Vec<(u64, u64, u64)>, Vec<(u64, u64)>);

/// Result of one network run.
#[derive(Debug)]
pub struct NetworkResult {
    pub stats: KernelStats,
    /// Final sink states, in sink order.
    pub sinks: Vec<Sink>,
    /// (served, busy_ticks) per server, in LP order.
    pub servers: Vec<(u64, u64)>,
}

impl NetworkResult {
    /// The deterministic cross-engine observables. Null-message counts are
    /// scheduling-dependent and deliberately excluded.
    pub fn observables(&self) -> NetworkObservables {
        (
            self.stats.events_delivered,
            self.stats.events_processed,
            self.sinks
                .iter()
                .map(|s| (s.received, s.total_latency, s.max_latency))
                .collect(),
            self.servers.clone(),
        )
    }
}

/// Driver abstraction so callers can swap kernels.
pub trait Driver {
    fn drive(
        &self,
        topology: &Topology,
        lps: Vec<Box<dyn Lp<Packet>>>,
        horizon: Time,
    ) -> RunOutcome<Packet>;
}

impl Driver for SeqKernel {
    fn drive(
        &self,
        topology: &Topology,
        lps: Vec<Box<dyn Lp<Packet>>>,
        horizon: Time,
    ) -> RunOutcome<Packet> {
        self.run(topology, lps, horizon)
    }
}

impl Driver for ParKernel {
    fn drive(
        &self,
        topology: &Topology,
        lps: Vec<Box<dyn Lp<Packet>>>,
        horizon: Time,
    ) -> RunOutcome<Packet> {
        self.run(topology, lps, horizon)
    }
}

/// Instantiate and run a network on the given kernel. `horizon_ticks`
/// is in whole ticks (converted to the sub-tick resolution internally).
pub fn run(spec: &NetworkSpec, driver: &impl Driver, horizon_ticks: Time) -> NetworkResult {
    let (topology, lps, sink_ids) = spec.instantiate();
    let outcome = driver.drive(&topology, lps, horizon_ticks.saturating_mul(TICK));
    let mut sinks = Vec::new();
    let mut servers = Vec::new();
    for (ix, lp) in outcome.lps.iter().enumerate() {
        if let Some(server) = lp.as_any().downcast_ref::<Server>() {
            servers.push((server.served, server.busy_ticks));
        }
        if sink_ids.iter().any(|s| s.index() == ix) {
            let sink = lp
                .as_any()
                .downcast_ref::<Sink>()
                .expect("sink id points at a Sink");
            sinks.push(Sink {
                received: sink.received,
                total_latency: sink.total_latency,
                max_latency: sink.max_latency,
                last_arrival: sink.last_arrival,
            });
        }
    }
    NetworkResult {
        stats: outcome.stats,
        sinks,
        servers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: Time = 60_000;

    #[test]
    fn tandem_delivers_packets_and_matches_across_kernels() {
        let spec = NetworkSpec::tandem(3, 0.6, 11);
        let seq = run(&spec, &SeqKernel::new(), HORIZON);
        let par = run(&spec, &ParKernel::new(2), HORIZON);
        assert!(seq.sinks[0].received > 300, "most packets should arrive");
        assert_eq!(seq.stats.ties_observed, 0, "jitter keeps runs tie-free");
        assert_eq!(seq.observables(), par.observables());
    }

    #[test]
    fn feedback_loop_terminates_and_matches() {
        let spec = NetworkSpec::feedback(0.3, 21);
        let seq = run(&spec, &SeqKernel::new(), HORIZON);
        let par = run(&spec, &ParKernel::new(3), HORIZON);
        assert_eq!(seq.stats.ties_observed, 0, "jitter keeps runs tie-free");
        assert_eq!(seq.observables(), par.observables());
        assert!(seq.stats.nulls_sent > 0, "cycles require null messages");
        // With p_loop = 0.3 every packet is served ≈ 1/(1-p) ≈ 1.43 times.
        let served = seq.servers[0].0 as f64;
        let arrived = seq.sinks[0].received as f64;
        assert!(arrived > 0.0);
        let ratio = served / arrived;
        assert!(
            (1.1..2.0).contains(&ratio),
            "loop ratio {ratio} out of range"
        );
    }

    #[test]
    fn fork_join_matches_across_kernels() {
        let spec = NetworkSpec::fork_join(31);
        let seq = run(&spec, &SeqKernel::new(), HORIZON);
        let par = run(&spec, &ParKernel::new(2), HORIZON);
        assert_eq!(seq.observables(), par.observables());
        // Both servers should share the load roughly evenly.
        let (a, b) = (seq.servers[0].0 as f64, seq.servers[1].0 as f64);
        assert!(a > 0.0 && b > 0.0);
        assert!((a / b) > 0.5 && (a / b) < 2.0, "imbalance {a}/{b}");
    }

    #[test]
    fn utilization_tracks_offered_load() {
        // M/M/1 sanity: utilization ≈ λ/μ (= the requested utilization).
        let spec = NetworkSpec::tandem(1, 0.5, 77);
        let out = run(&spec, &SeqKernel::new(), 80_000);
        let (_, busy) = out.servers[0];
        // The source stops after 400 packets; measure against the time the
        // server was actually receiving work.
        let active_span = out.sinks[0].last_arrival as f64;
        let utilization = busy as f64 / active_span;
        assert!(
            (0.3..0.7).contains(&utilization),
            "utilization {utilization} should be near 0.5"
        );
    }

    #[test]
    fn latency_grows_with_utilization() {
        // Queueing 101: higher utilization ⇒ longer waits.
        let low = run(&NetworkSpec::tandem(1, 0.3, 5), &SeqKernel::new(), 120_000);
        let high = run(&NetworkSpec::tandem(1, 0.85, 5), &SeqKernel::new(), 120_000);
        assert!(
            high.sinks[0].mean_latency() > low.sinks[0].mean_latency(),
            "high-load latency {} should exceed low-load {}",
            high.sinks[0].mean_latency(),
            low.sinks[0].mean_latency()
        );
    }

    #[test]
    fn determinism_across_worker_counts() {
        let spec = NetworkSpec::feedback(0.25, 99);
        let reference = run(&spec, &SeqKernel::new(), HORIZON).observables();
        for workers in [1, 2, 4] {
            let par = run(&spec, &ParKernel::new(workers), HORIZON).observables();
            assert_eq!(reference, par, "{workers} workers");
        }
    }
}
