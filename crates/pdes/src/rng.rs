//! Deterministic, counter-based randomness for stochastic models.
//!
//! Engines and thread counts must not change a model's trajectory, so
//! every random draw must be a pure function of (stream seed, draw
//! index). [`DetRng`] is a SplitMix64 sequence: cheap, stateless beyond a
//! counter, and identical everywhere.

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A stream seeded from `seed` (streams with different seeds are
    /// effectively independent).
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponentially distributed duration with the given mean, in ticks,
    /// clamped to ≥ 1 (zero durations would break FIFO-channel ordering
    /// guarantees and positive-lookahead requirements).
    pub fn exp_ticks(&mut self, mean: f64) -> u64 {
        assert!(mean > 0.0);
        let u = self.uniform().max(1e-12);
        let ticks = (-mean * u.ln()).round();
        (ticks as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(8);
        assert_ne!(DetRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = DetRng::new(1);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_ticks_mean_is_roughly_right() {
        let mut rng = DetRng::new(42);
        let n = 20_000;
        let mean = 50.0;
        let total: u64 = (0..n).map(|_| rng.exp_ticks(mean)).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn exp_ticks_never_zero() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            assert!(rng.exp_ticks(0.3) >= 1);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
