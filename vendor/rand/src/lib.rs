//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Deterministic, seedable generation only — exactly what the circuit
//! generators, stimuli and randomized tests need. [`rngs::StdRng`] is a
//! splitmix64-seeded xoshiro256++ generator; it does **not** match the
//! real `StdRng`'s (ChaCha12) stream, which is fine because every
//! consumer in this repo treats the stream as an arbitrary deterministic
//! function of the seed.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an `RngCore` ("Standard" distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Widening multiply: unbiased enough for test workloads.
                let v = (rng.next_u64() as u128 * span) >> 64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                start + v as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++, splitmix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "suspicious bias: {heads}");
    }
}
