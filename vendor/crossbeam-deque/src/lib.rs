//! Offline shim for the `crossbeam-deque` work-stealing API.
//!
//! The real crate implements the Chase–Lev lock-free deque; this shim
//! keeps the exact same API (`Worker`/`Stealer`/`Injector`/`Steal`) but
//! backs each deque with a mutex-protected `VecDeque`. Semantics are
//! preserved — LIFO owner pops, FIFO steals, batched steals move up to
//! half the victim's items — at the cost of some scalability, which is
//! acceptable for this offline build (the evaluation host is small and
//! correctness, not peak throughput, is what the test tiers check).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// Lost a race; retrying may succeed.
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

fn locked<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Move up to half of `src`'s items (at least one, at most 32) into
/// `dest`'s queue and return one extra item for the caller.
fn steal_batch_and_pop_from<T>(
    src: &Mutex<VecDeque<T>>,
    dest: &Worker<T>,
) -> Steal<T> {
    let mut q = locked(src);
    let first = match q.pop_front() {
        Some(t) => t,
        None => return Steal::Empty,
    };
    let batch = (q.len() / 2).min(32);
    if batch > 0 {
        let mut dq = locked(&dest.queue);
        for _ in 0..batch {
            match q.pop_front() {
                Some(t) => dq.push_back(t),
                None => break,
            }
        }
    }
    Steal::Success(first)
}

/// The owner side of a worker deque. Owner pops LIFO (`new_lifo`), thieves
/// steal FIFO from the opposite end.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn new_fifo() -> Self {
        // The shim's owner pops are LIFO either way; acceptable because
        // this workspace only constructs LIFO workers.
        Self::new_lifo()
    }

    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        locked(&self.queue).pop_back()
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Worker { .. }")
    }
}

/// The thief side of a worker deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        steal_batch_and_pop_from(&self.queue, dest)
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Stealer { .. }")
    }
}

/// A FIFO queue for submissions from outside the worker pool.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        steal_batch_and_pop_from(&self.queue, dest)
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Injector { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo_and_batches_into_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let first = inj.steal_batch_and_pop(&w);
        assert_eq!(first, Steal::Success(0));
        // Some of the remainder moved into the worker's queue.
        assert!(!w.is_empty());
        let total = w.len() + inj.len();
        assert_eq!(total, 9);
    }

    #[test]
    fn cross_thread_stealing_loses_nothing() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for i in 0..1000 {
            w.push(i);
        }
        let thief = std::thread::spawn(move || {
            let dest = Worker::new_lifo();
            let mut got = 0u32;
            loop {
                match s.steal_batch_and_pop(&dest) {
                    Steal::Success(_) => got += 1,
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
                while dest.pop().is_some() {
                    got += 1;
                }
            }
            got
        });
        let mut own = 0u32;
        while w.pop().is_some() {
            own += 1;
        }
        let stolen = thief.join().unwrap();
        assert_eq!(own + stolen, 1000);
    }
}
