//! Offline shim for the `crossbeam` facade. This workspace uses
//! `queue::SegQueue` (the actor mailboxes) and `channel` (the sharded
//! engine's bounded cross-shard mailboxes); both are provided here over
//! mutex-protected `VecDeque`s with the same semantics as the real crate.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// Unbounded MPMC FIFO queue.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        pub fn push(&self, value: T) {
            self.locked().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.locked().pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.locked().is_empty()
        }

        pub fn len(&self) -> usize {
            self.locked().len()
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> std::fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SegQueue").field("len", &self.len()).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }
    }
}

/// Bounded MPSC channels with the `crossbeam-channel` API subset the
/// workspace needs: `bounded`, cloneable `Sender` with `try_send`/`send`,
/// single `Receiver` with `try_recv`/`recv`/`recv_timeout`, disconnect
/// detection on both ends, and `len` on both ends (the watchdog's stall
/// snapshots read mailbox depths through a cloned `Sender`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receiver_alive: bool,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn locked(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Create a bounded FIFO channel with capacity `cap` (must be > 0;
    /// the real crate's rendezvous mode is not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "shim channels do not support rendezvous (cap 0)");
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receiver_alive: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender { chan: Arc::clone(&chan) },
            Receiver { chan },
        )
    }

    /// Error for `Sender::send`: the receiver disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for `Sender::try_send`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The buffer is at capacity.
        Full(T),
        /// The receiver disconnected; the message can never be delivered.
        Disconnected(T),
    }

    /// Error for `Receiver::try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error for `Receiver::recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for `Receiver::recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// The sending half. Clone freely; the channel disconnects for the
    /// receiver when the last clone drops.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Deliver without blocking, or report why not.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.locked();
            if !st.receiver_alive {
                return Err(TrySendError::Disconnected(value));
            }
            if st.buf.len() >= st.cap {
                return Err(TrySendError::Full(value));
            }
            st.buf.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Block until the message is delivered or the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.locked();
            loop {
                if !st.receiver_alive {
                    return Err(SendError(value));
                }
                if st.buf.len() < st.cap {
                    st.buf.push_back(value);
                    drop(st);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .chan
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.chan.locked().buf.len()
        }

        /// True when nothing is buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.locked().senders += 1;
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.chan.locked();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                // Wake a receiver blocked on an empty, now-disconnected
                // channel.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").field("len", &self.len()).finish()
        }
    }

    /// The receiving half (single consumer in this shim).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Take the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.locked();
            match st.buf.pop_front() {
                Some(v) => {
                    drop(st);
                    self.chan.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.locked();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.locked();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.chan.locked().buf.len()
        }

        /// True when nothing is buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.locked().receiver_alive = false;
            // Wake senders blocked on a full, now-disconnected channel.
            self.chan.not_full.notify_all();
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").field("len", &self.len()).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_capacity() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Ok(3));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn sender_drop_disconnects_receiver() {
            let (tx, rx) = bounded::<i32>(1);
            let tx2 = tx.clone();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx2.try_send(9).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn receiver_drop_disconnects_senders() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.try_send(5), Err(TrySendError::Disconnected(5)));
            assert_eq!(tx.send(6), Err(SendError(6)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<i32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn blocking_send_wakes_on_recv() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap().unwrap();
        }
    }
}
