//! Offline shim for the `crossbeam` facade. Only `queue::SegQueue` is
//! used in this workspace (the actor mailboxes); it is provided here over
//! a mutex-protected `VecDeque` with the same unbounded MPMC semantics.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// Unbounded MPMC FIFO queue.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        pub fn push(&self, value: T) {
            self.locked().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.locked().pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.locked().is_empty()
        }

        pub fn len(&self) -> usize {
            self.locked().len()
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> std::fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SegQueue").field("len", &self.len()).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }
    }
}
