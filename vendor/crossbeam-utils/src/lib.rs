//! Offline shim for the subset of `crossbeam-utils` this workspace uses:
//! [`Backoff`] (contention backoff) and [`CachePadded`] (false-sharing
//! avoidance). Semantics follow the real crate closely enough for the
//! schedulers built on top: `snooze` escalates from spinning to
//! `yield_now`, and `is_completed` signals "stop spinning, go park".

use std::cell::Cell;
use std::ops::{Deref, DerefMut};

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for contended lock-free loops.
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    pub fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-spin a few iterations (bounded by the spin limit).
    pub fn spin(&self) {
        for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Spin while young, yield the thread once the spin budget is spent.
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step.get() {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step.get() <= YIELD_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// True once backing off further is pointless and the caller should
    /// block (park) instead.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

/// Pads and aligns a value to 128 bytes so neighbouring values never share
/// a cache line (two lines: covers adjacent-line prefetchers).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_completes_after_enough_snoozes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(42u64);
        assert_eq!(*p, 42);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
    }
}
