//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched. This shim reproduces the API surface the repo needs
//! (`Mutex` with non-poisoning guard-returning `lock`, `Condvar` whose
//! `wait`/`wait_for` take `&mut MutexGuard`) on top of `std::sync`.
//! Poisoned std locks are recovered transparently: a panicking task must
//! not wedge the schedulers built on top of this (the same behaviour the
//! real parking_lot exhibits, which has no poisoning at all).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Non-poisoning mutex with the `parking_lot` guard API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard holding the inner std guard in an `Option` so a `Condvar` can
/// take it for the duration of a wait and hand it back afterwards.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on this module's `MutexGuard`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present before wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Non-poisoning reader-writer lock (API subset).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait_for(&mut g, Duration::from_millis(50));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
