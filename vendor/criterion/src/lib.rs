//! Offline shim for the subset of `criterion` 0.5 this workspace's bench
//! targets use. It keeps the same authoring API (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) but replaces criterion's statistical machinery with a
//! plain wall-clock loop: each benchmark runs `sample_size` timed samples
//! and prints min/mean per iteration. No plotting, no saved baselines.
//!
//! When the harness is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), every benchmark runs exactly once so
//! the suite stays fast and can't wedge the test tier.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup iteration outside the timed region.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level harness state. Mirrors `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that take no value and that we
                // can safely ignore in the shim.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let sample_size = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("{full}: ok (test mode, 1 iteration)");
            return;
        }
        let n = bencher.samples.len().max(1) as u32;
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        println!("{full}: mean {mean:?}, min {min:?} ({n} samples)");
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_counts_samples() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // 1 warmup + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(50);
            group.bench_with_input(BenchmarkId::new("w", 3), &2u32, |b, x| {
                b.iter(|| runs += *x)
            });
        }
        // 1 warmup + 1 sample.
        assert_eq!(runs, 4);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: false,
            filter: Some("other".into()),
        };
        let mut runs = 0u32;
        c.benchmark_group("g")
            .bench_function("skipped", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }
}
