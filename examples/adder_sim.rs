//! Simulate a 64-bit Kogge–Stone adder gate-by-gate through the parallel
//! DES engine and check the sums it computes against machine arithmetic.
//!
//! This is the paper's ks64 evaluation workload used as an *application*:
//! the waveforms sampled after each input vector settles must spell out
//! the correct 65-bit sums.
//!
//! ```sh
//! cargo run --release --example adder_sim [num_vectors]
//! ```

use circuit::{critical_path_delay, generators, DelayModel, Logic, Stimulus, TimedValue};
use des::engine::hj::HjEngine;
use des::engine::{Engine, EngineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let vectors: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("num_vectors must be an integer"))
        .unwrap_or(8);

    const BITS: usize = 64;
    let circuit = generators::kogge_stone_adder(BITS);
    let delays = DelayModel::standard();
    // Space the vectors past the critical path so each sum settles before
    // the next operands arrive.
    let period = critical_path_delay(&circuit, &delays) + 1;

    // Random operand pairs.
    let mut rng = StdRng::seed_from_u64(2015);
    let operands: Vec<(u64, u64, bool)> =
        (0..vectors).map(|_| (rng.gen(), rng.gen(), rng.gen())).collect();

    // Build the stimulus: inputs are a0..a63, b0..b63, cin.
    let mut per_input: Vec<Vec<TimedValue>> = vec![Vec::new(); circuit.inputs().len()];
    for (k, &(a, b, cin)) in operands.iter().enumerate() {
        let t = 1 + k as u64 * period;
        for i in 0..BITS {
            per_input[i].push(TimedValue { time: t, value: Logic::from_bit(a >> i) });
            per_input[BITS + i].push(TimedValue { time: t, value: Logic::from_bit(b >> i) });
        }
        per_input[2 * BITS].push(TimedValue { time: t, value: Logic::from_bool(cin) });
    }
    let stimulus = Stimulus::from_events(per_input);

    println!(
        "simulating {} vectors through {} gates ({} edges), period {}",
        vectors,
        circuit.num_nodes(),
        circuit.num_edges(),
        period
    );
    let engine = HjEngine::from_config(&EngineConfig::default().with_workers(2));
    let start = std::time::Instant::now();
    let out = engine.run(&circuit, &stimulus, &delays);
    let elapsed = start.elapsed();
    println!(
        "processed {} events in {:?} ({:.0} ns/event)",
        out.stats.events_processed,
        elapsed,
        elapsed.as_nanos() as f64 / out.stats.events_processed as f64
    );

    // Sample each settled sum from the output waveforms and verify.
    let mut correct = 0;
    for (k, &(a, b, cin)) in operands.iter().enumerate() {
        let sample_t = k as u64 * period + period; // just before the next vector
        let mut sum: u128 = 0;
        for (i, wf) in out.waveforms.iter().enumerate() {
            if let Some(v) = wf.value_at(sample_t) {
                sum |= (v.as_bit() as u128) << i;
            }
        }
        let expected = a as u128 + b as u128 + cin as u128;
        assert_eq!(
            sum, expected,
            "vector {k}: DES said {a} + {b} + {cin} = {sum}, expected {expected}"
        );
        correct += 1;
    }
    println!("{correct}/{vectors} sums verified against machine arithmetic ✓");
}
