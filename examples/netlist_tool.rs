//! Netlist round-trip tool: generate a named circuit, save it in the text
//! netlist format, parse it back, and simulate the reloaded circuit —
//! the file-driven workflow the Galois benchmark distribution used.
//!
//! ```sh
//! cargo run --release --example netlist_tool -- ks16 /tmp/ks16.net
//! cargo run --release --example netlist_tool -- c17
//! ```

use circuit::{generators, netlist, DelayModel, Stimulus};
use des::engine::seq::SeqWorksetEngine;
use des::engine::Engine;

fn build(name: &str) -> circuit::Circuit {
    match name {
        "c17" => generators::c17(),
        "full-adder" => generators::full_adder(),
        "ks8" => generators::kogge_stone_adder(8),
        "ks16" => generators::kogge_stone_adder(16),
        "ks64" => generators::kogge_stone_adder(64),
        "mult4" => generators::wallace_multiplier(4),
        "mult12" => generators::wallace_multiplier(12),
        "ripple16" => generators::ripple_carry_adder(16),
        other => {
            eprintln!("unknown circuit {other:?}; try c17, full-adder, ks8, ks16, ks64, mult4, mult12, ripple16");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "c17".to_string());
    let path = args.next();

    let original = build(&name);
    let text = netlist::serialize(&original);
    println!(
        "{name}: {} nodes, {} edges → {} bytes of netlist",
        original.num_nodes(),
        original.num_edges(),
        text.len()
    );

    if let Some(path) = &path {
        std::fs::write(path, &text).expect("write netlist file");
        println!("wrote {path}");
    } else {
        // Print the first lines as a preview.
        for line in text.lines().take(8) {
            println!("  {line}");
        }
        if text.lines().count() > 8 {
            println!("  … ({} more lines)", text.lines().count() - 8);
        }
    }

    // Round-trip: parse it back and check structural identity.
    let reparsed = netlist::parse(&text).expect("own output parses");
    assert_eq!(reparsed.num_nodes(), original.num_nodes());
    assert_eq!(reparsed.num_edges(), original.num_edges());

    // Simulate the reloaded circuit.
    let stimulus = Stimulus::random_vectors(&reparsed, 5, 20, 1);
    let out = SeqWorksetEngine::new().run(&reparsed, &stimulus, &DelayModel::standard());
    println!(
        "simulated reloaded circuit: {} events, {} NULL messages, outputs settled: {:?}",
        out.stats.events_delivered,
        out.stats.nulls_sent,
        out.waveforms
            .iter()
            .map(|w| w.final_value().map(|v| v.as_bit()))
            .collect::<Vec<_>>()
    );
}
