//! Network simulation on the generic PDES kernel — the paper's §6
//! future-work direction ("larger-scale DES application, such as
//! wireless mobile ad hoc network simulation") realized as an open
//! queueing network with feedback, run sequentially and in parallel.
//!
//! ```sh
//! cargo run --release --example network_sim [workers] [horizon_ticks]
//! ```

use pdes::kernel::{ParKernel, SeqKernel};
use pdes::queueing::{self, NetworkSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args
        .next()
        .map(|v| v.parse().expect("workers must be an integer"))
        .unwrap_or(2);
    let horizon: u64 = args
        .next()
        .map(|v| v.parse().expect("horizon must be an integer"))
        .unwrap_or(100_000);

    println!("open queueing networks on the conservative PDES kernel");
    println!("(horizon {horizon} ticks, {workers} workers for the parallel runs)\n");

    let specs = [
        NetworkSpec::tandem(4, 0.7, 1),
        NetworkSpec::feedback(0.35, 2),
        NetworkSpec::fork_join(3),
    ];
    for spec in &specs {
        let t0 = std::time::Instant::now();
        let seq = queueing::run(spec, &SeqKernel::new(), horizon);
        let t_seq = t0.elapsed();
        let t0 = std::time::Instant::now();
        let par = queueing::run(spec, &ParKernel::new(workers), horizon);
        let t_par = t0.elapsed();

        assert_eq!(
            seq.observables(),
            par.observables(),
            "engines must agree on {}",
            spec.name
        );
        let sink = &seq.sinks[0];
        println!("== {}", spec.name);
        println!(
            "   packets delivered: {:>6}   mean latency: {:>8.1} ticks   max: {:>6}",
            sink.received,
            sink.mean_latency(),
            sink.max_latency / queueing::TICK
        );
        println!(
            "   events: {:>8} payload + {:>6} null   (horizon drops: {})",
            seq.stats.events_delivered, seq.stats.nulls_sent, seq.stats.dropped_at_horizon
        );
        for (i, (served, busy)) in seq.servers.iter().enumerate() {
            println!("   server {i}: served {served:>6}, busy {busy:>8} ticks");
        }
        println!("   seq {t_seq:?}  |  par[{workers}] {t_par:?}   (identical observables ✓)\n");
    }
    println!("feedback topologies terminate because null messages carry");
    println!("timestamped promises around the cycle — the full Chandy–Misra");
    println!("protocol, not just the paper's end-of-stream NULL.");
}
