//! Race every engine on the same workload — the paper's §5 comparison in
//! miniature, extended with the engines the paper only references
//! (global event list) or proposes (actors).
//!
//! ```sh
//! cargo run --release --example engine_comparison [workers]
//! ```

use std::sync::Arc;
use std::time::Instant;

use circuit::{generators, DelayModel, Stimulus};
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::seq::SeqWorksetEngine;
use des::engine::seq_heap::SeqHeapEngine;
use des::engine::{build, Engine, EngineConfig};
use des::validate::{check_equivalent, observables};
use des::RebalancePolicy;
use galois::{GaloisEngine, GaloisSeqEngine};
use hj::HjRuntime;

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("workers must be an integer"))
        .unwrap_or(2);

    // An 8-bit multiplier keeps the run interactive: the Time Warp
    // entrant pays heavy rollback storms on this workload class (that is
    // the point of including it — see EXPERIMENTS.md).
    let circuit = generators::wallace_multiplier(8);
    let stimulus = Stimulus::random_vectors(&circuit, 1, 10, 7);
    let delays = DelayModel::standard();
    println!(
        "workload: 8-bit tree multiplier, {} nodes, {} initial events, {workers} workers\n",
        circuit.num_nodes(),
        stimulus.num_events()
    );

    let rt = Arc::new(HjRuntime::new(workers));
    let cfg = EngineConfig::default().with_workers(workers);
    let sharded_cfg = cfg.clone().with_shards(workers.max(2));
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(SeqWorksetEngine::new()),
        Box::new(SeqHeapEngine::new()),
        Box::new(GaloisSeqEngine::new()),
        Box::new(HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default())),
        Box::new(GaloisEngine::new(workers)),
        build("actor", &cfg),
        build("timewarp", &cfg),
        build("sharded", &sharded_cfg),
        // The sharded engine again, with epoch-barrier repartitioning
        // on: the rebalances / imbalance columns are its report card.
        build(
            "sharded",
            &sharded_cfg.clone().with_rebalance(Some(RebalancePolicy {
                epoch_events: 256,
                min_imbalance_pct: 10,
                max_moves: 32,
            })),
        ),
        // The same shard cores over localhost TCP sockets (2 "process"
        // ranks in-process): measures what the wire costs end to end.
        build("tcp-sharded", &sharded_cfg.clone().with_processes(2)),
    ];

    let reference = SeqWorksetEngine::new().run(&circuit, &stimulus, &delays);
    println!(
        "{:<26} {:>12} {:>14} {:>10} {:>9} {:>7} {:>7}",
        "engine", "time", "events", "runs", "aborts", "rebal", "imbal%"
    );
    for engine in &engines {
        let start = Instant::now();
        let out = engine.run(&circuit, &stimulus, &delays);
        let elapsed = start.elapsed();
        check_equivalent(&reference, &out).expect("all engines agree");
        println!(
            "{:<26} {:>12} {:>14} {:>10} {:>9} {:>7} {:>7}",
            engine.name(),
            format!("{elapsed:.2?}"),
            out.stats.events_delivered,
            out.stats.node_runs,
            out.stats.aborts,
            out.stats.rebalances,
            out.stats.shard_load_imbalance_pct
        );
    }
    println!(
        "\nall engines produced identical deterministic observables \
         ({} total events, {} outputs) ✓",
        observables(&reference).total_events,
        reference.waveforms.len()
    );

    // The same race on the payload-generic model layer: a PHOLD ring
    // through the sequential model engine and the sharded executor —
    // the workload class sim-replicate fans out by the thousands.
    let phold = model::phold::PholdConfig {
        lps: 16,
        population: 4,
        lookahead: 4,
        remote_fraction: 0.5,
        mean_delay: 10.0,
    };
    let (seed, horizon) = (7u64, 2_000u64);
    println!(
        "\nworkload: PHOLD ring, {} LPs, population {}, horizon {horizon}\n",
        phold.lps,
        phold.lps * phold.population
    );
    println!("{:<26} {:>12} {:>14} {:>18}", "engine", "time", "events", "checksum");
    let mut model_reference: Option<model::ModelOutput> = None;
    for (engine, shards) in
        [("model-seq", 1), ("model-sharded", workers.max(2))]
    {
        let ecfg = EngineConfig::default().with_shards(shards);
        let start = Instant::now();
        let out = model::run(engine, &ecfg, model::phold::build(phold, seed, horizon));
        let elapsed = start.elapsed();
        match &model_reference {
            None => model_reference = Some(out.clone()),
            Some(r) => r.assert_equivalent(&out),
        }
        println!(
            "{:<26} {:>12} {:>14} {:>18}",
            format!("{engine} (K={shards})"),
            format!("{elapsed:.2?}"),
            out.stats.events_delivered,
            format!("{:#018x}", out.checksum),
        );
    }
    println!(
        "\nmodel engines produced identical observables and event-stream \
         checksums ✓"
    );
}
