//! Figure 1 interactively: plot the available parallelism of several
//! circuit shapes as ASCII charts, showing why DES speedups are limited
//! (parallelism is low at the ports and high in the middle — paper §2.2).
//!
//! ```sh
//! cargo run --release --example parallelism_profile
//! ```

use circuit::{generators, Circuit, DelayModel, Stimulus};
use des::profile::available_parallelism;

fn chart(name: &str, circuit: &Circuit, vectors: usize) {
    let stimulus = Stimulus::random_vectors(circuit, vectors, 10, 1);
    let profile = available_parallelism(circuit, &stimulus, &DelayModel::standard());
    println!(
        "\n{name}: {} nodes | rounds {} | peak {} | mean {:.1} | {} events",
        circuit.num_nodes(),
        profile.rounds(),
        profile.peak(),
        profile.mean(),
        profile.total_events
    );
    let peak = profile.peak().max(1);
    let n = profile.active_per_round.len();
    let bucket = n.div_ceil(30).max(1);
    for (i, chunk) in profile.active_per_round.chunks(bucket).enumerate() {
        let m = chunk.iter().copied().max().unwrap_or(0);
        println!("  {:>4} {:>5} {}", i * bucket, m, "▇".repeat((m * 48).div_ceil(peak)));
    }
}

fn main() {
    println!("available parallelism profiles (cf. paper Figure 1)");
    chart("inverter chain (no parallelism)", &generators::inverter_chain(24), 2);
    chart("fanout tree (exponential growth)", &generators::fanout_tree(5, 2), 2);
    chart("kogge-stone 64 (prefix network)", &generators::kogge_stone_adder(64), 2);
    chart("tree multiplier 12 (the paper's Figure 1 circuit)", &generators::wallace_multiplier(12), 1);
    println!("\nthe multiplier swells in the middle and tapers into the final carry chain —");
    println!("the same shape the Galois project measured (Figure 1 of the paper).");
}
