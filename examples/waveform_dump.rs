//! Dump simulation waveforms as a VCD file for a standard waveform viewer
//! (GTKWave etc.): simulate a circuit, export the settled output
//! waveforms, and write them to disk.
//!
//! ```sh
//! cargo run --release --example waveform_dump -- ks8 /tmp/ks8.vcd
//! ```

use circuit::{generators, DelayModel, Stimulus};
use des::engine::hj::HjEngine;
use des::engine::{Engine, EngineConfig};
use des::vcd;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "c17".to_string());
    let path = args.next().unwrap_or_else(|| format!("/tmp/{name}.vcd"));

    let circuit = match name.as_str() {
        "c17" => generators::c17(),
        "full-adder" => generators::full_adder(),
        "ks8" => generators::kogge_stone_adder(8),
        "ks16" => generators::kogge_stone_adder(16),
        "mult4" => generators::wallace_multiplier(4),
        "parity8" => generators::parity_tree(8),
        other => {
            eprintln!("unknown circuit {other:?}; try c17, full-adder, ks8, ks16, mult4, parity8");
            std::process::exit(1);
        }
    };

    let stimulus = Stimulus::random_vectors(&circuit, 12, 8, 2026);
    let out = HjEngine::from_config(&EngineConfig::default().with_workers(2))
        .run(&circuit, &stimulus, &DelayModel::standard());
    let document = vcd::to_vcd(&circuit, &out, &name);
    std::fs::write(&path, &document).expect("write VCD file");

    let changes = document.lines().filter(|l| l.starts_with('#')).count();
    println!(
        "simulated {name}: {} events → {} outputs, {changes} change times",
        out.stats.events_processed,
        out.waveforms.len()
    );
    println!("wrote {} bytes of VCD to {path}", document.len());
    println!("open it with e.g.: gtkwave {path}");
}
