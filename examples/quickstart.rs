//! Quickstart: build a tiny circuit, drive it with a stimulus, and
//! simulate it with the sequential and the parallel (HJlib-style) engines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use circuit::{CircuitBuilder, DelayModel, GateKind, Logic, Stimulus, TimedValue};
use des::engine::hj::HjEngine;
use des::engine::seq::SeqWorksetEngine;
use des::engine::{Engine, EngineConfig};
use des::validate::check_equivalent;

fn main() {
    // 1. Describe the circuit: y = (a AND b) XOR (NOT a).
    let mut b = CircuitBuilder::new();
    let a = b.add_input("a");
    let bb = b.add_input("b");
    let and = b.add_gate(GateKind::And, &[a, bb]);
    let na = b.add_gate(GateKind::Not, &[a]);
    let xor = b.add_gate(GateKind::Xor, &[and, na]);
    b.add_output("y", xor);
    let circuit = b.build().expect("valid circuit");
    println!(
        "circuit: {} nodes, {} edges",
        circuit.num_nodes(),
        circuit.num_edges()
    );

    // 2. Describe the stimulus: three edges on `a`, one on `b`.
    let stimulus = Stimulus::from_events(vec![
        vec![
            TimedValue { time: 1, value: Logic::One },
            TimedValue { time: 10, value: Logic::Zero },
            TimedValue { time: 20, value: Logic::One },
        ],
        vec![TimedValue { time: 1, value: Logic::One }],
    ]);
    let delays = DelayModel::standard();

    // 3. Simulate sequentially (the paper's Algorithm 1)…
    let seq = SeqWorksetEngine::new().run(&circuit, &stimulus, &delays);
    println!("sequential: {} events processed", seq.stats.events_processed);

    // 4. …and in parallel with async/finish tasks + per-port trylocks
    //    (the paper's Algorithm 2).
    let par = HjEngine::from_config(&EngineConfig::default().with_workers(2))
        .run(&circuit, &stimulus, &delays);
    println!(
        "parallel:   {} events processed across {} node runs",
        par.stats.events_processed, par.stats.node_runs
    );

    // 5. Engines agree on every deterministic observable.
    check_equivalent(&seq, &par).expect("engines agree");

    // 6. Inspect the output waveform (settled value per timestamp).
    println!("waveform at y:");
    for (t, v) in seq.waveforms[0].settled() {
        println!("  t={t:>3}  y={v}");
    }
}
