//! Property-based tests: random circuits × random stimuli, checked
//! against the invariants that define correct conservative DES.

use circuit::generators::{random_layered, RandomCircuitConfig};
use circuit::{Circuit, DelayModel, Logic, Stimulus, TimedValue};
use des::engine::actor::ActorEngine;
use des::engine::hj::HjEngine;
use des::engine::seq::SeqWorksetEngine;
use des::engine::seq_heap::SeqHeapEngine;
use des::engine::Engine;
use des::validate::{check_against_oracle, check_conservation, check_equivalent};
use galois::GaloisEngine;
use proptest::prelude::*;

/// Strategy: a random circuit shape.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (1usize..6, 1usize..5, 1usize..8, any::<u64>()).prop_map(|(inputs, layers, width, seed)| {
        random_layered(RandomCircuitConfig {
            inputs,
            layers,
            width,
            seed,
        })
    })
}

/// Strategy: a stimulus for `num_inputs` inputs — every input gets a
/// (possibly empty) strictly-increasing event list.
fn stimulus_strategy(num_inputs: usize) -> impl Strategy<Value = Stimulus> {
    prop::collection::vec(
        prop::collection::vec((1u64..40, any::<bool>()), 0..8),
        num_inputs..=num_inputs,
    )
    .prop_map(|raw| {
        let per_input = raw
            .into_iter()
            .map(|events| {
                let mut t = 0u64;
                events
                    .into_iter()
                    .map(|(dt, v)| {
                        t += dt; // strictly increasing per input
                        TimedValue {
                            time: t,
                            value: Logic::from_bool(v),
                        }
                    })
                    .collect()
            })
            .collect();
        Stimulus::from_events(per_input)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs six engines; keep the suite fast
        .. ProptestConfig::default()
    })]

    /// All engines agree on all deterministic observables, for arbitrary
    /// DAG circuits and arbitrary stimuli.
    #[test]
    fn engines_agree_on_random_circuits(
        (circuit, stimulus) in circuit_strategy()
            .prop_flat_map(|c| {
                let n = c.inputs().len();
                (Just(c), stimulus_strategy(n))
            })
    ) {
        let delays = DelayModel::standard();
        let reference = SeqWorksetEngine::new().run(&circuit, &stimulus, &delays);
        check_conservation(&reference).unwrap();
        check_against_oracle(&circuit, &stimulus, &reference).unwrap();

        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(SeqHeapEngine::new()),
            Box::new(HjEngine::new(2)),
            Box::new(GaloisEngine::new(2)),
            Box::new(ActorEngine::new(2)),
        ];
        for engine in engines {
            let out = engine.run(&circuit, &stimulus, &delays);
            check_conservation(&out)
                .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            check_equivalent(&reference, &out)
                .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
        }
    }

    /// Event-count conservation law: delivered events equal the analytic
    /// path-count formula of the DAG (per stimulus event at each input).
    #[test]
    fn event_totals_follow_path_counts(
        (circuit, stimulus) in circuit_strategy()
            .prop_flat_map(|c| {
                let n = c.inputs().len();
                (Just(c), stimulus_strategy(n))
            })
    ) {
        let out = SeqWorksetEngine::new().run(&circuit, &stimulus, &DelayModel::standard());
        // delivered = Σ_inputs k_i * (1 + Σ_edges paths from input i to the
        // edge's source), where k_i is input i's stimulus event count —
        // every processed event re-emits once per out-edge.
        let mut total = 0u64;
        for (ix, &input) in circuit.inputs().iter().enumerate() {
            let k = stimulus.input_events(ix).len() as u64;
            if k == 0 {
                continue;
            }
            let mut emit = vec![0u64; circuit.num_nodes()];
            emit[input.index()] = 1;
            for &id in circuit.topo_order() {
                let node = circuit.node(id);
                if !node.fanin.is_empty() {
                    emit[id.index()] = node.fanin.iter().map(|s| emit[s.index()]).sum();
                }
            }
            let edge_events: u64 = circuit.edges().map(|(src, _)| emit[src.index()]).sum();
            total += k * (1 + edge_events);
        }
        prop_assert_eq!(out.stats.events_delivered, total);
    }

    /// Output waveforms are time-monotone and NULL accounting is exact.
    #[test]
    fn waveforms_monotone_and_nulls_exact(
        (circuit, stimulus) in circuit_strategy()
            .prop_flat_map(|c| {
                let n = c.inputs().len();
                (Just(c), stimulus_strategy(n))
            })
    ) {
        let out = HjEngine::new(2).run(&circuit, &stimulus, &DelayModel::standard());
        for wf in &out.waveforms {
            for pair in wf.events().windows(2) {
                prop_assert!(pair[0].time <= pair[1].time);
            }
        }
        prop_assert_eq!(out.stats.nulls_sent as usize, circuit.num_edges());
    }
}
