//! Randomized property tests: random circuits × random stimuli, checked
//! against the invariants that define correct conservative DES. Cases are
//! drawn from a fixed-seed RNG so every run explores the same (broad)
//! slice of the input space deterministically.

use circuit::generators::{random_layered, RandomCircuitConfig};
use circuit::{Circuit, DelayModel, Logic, Stimulus, TimedValue};
use des::engine::actor::ActorEngine;
use des::engine::hj::HjEngine;
use des::engine::seq::SeqWorksetEngine;
use des::engine::seq_heap::SeqHeapEngine;
use des::engine::{Engine, EngineConfig};
use des::validate::{check_against_oracle, check_conservation, check_equivalent};
use galois::GaloisEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a random circuit shape (mirrors the old proptest strategy ranges).
fn random_circuit(rng: &mut StdRng) -> Circuit {
    random_layered(RandomCircuitConfig {
        inputs: rng.gen_range(1usize..6),
        layers: rng.gen_range(1usize..5),
        width: rng.gen_range(1usize..8),
        seed: rng.gen(),
    })
}

/// Draw a stimulus for `num_inputs` inputs — every input gets a
/// (possibly empty) strictly-increasing event list.
fn random_stimulus(rng: &mut StdRng, num_inputs: usize) -> Stimulus {
    let per_input = (0..num_inputs)
        .map(|_| {
            let n = rng.gen_range(0usize..8);
            let mut t = 0u64;
            (0..n)
                .map(|_| {
                    t += rng.gen_range(1u64..40); // strictly increasing per input
                    TimedValue {
                        time: t,
                        value: Logic::from_bool(rng.gen()),
                    }
                })
                .collect()
        })
        .collect();
    Stimulus::from_events(per_input)
}

/// All engines agree on all deterministic observables, for arbitrary
/// DAG circuits and arbitrary stimuli.
#[test]
fn engines_agree_on_random_circuits() {
    let mut rng = StdRng::seed_from_u64(0xDE5_0001);
    for case in 0..24 {
        let circuit = random_circuit(&mut rng);
        let stimulus = random_stimulus(&mut rng, circuit.inputs().len());
        let delays = DelayModel::standard();
        let reference = SeqWorksetEngine::new().run(&circuit, &stimulus, &delays);
        check_conservation(&reference).unwrap_or_else(|e| panic!("case {case}: {e}"));
        check_against_oracle(&circuit, &stimulus, &reference)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));

        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(SeqHeapEngine::new()),
            Box::new(HjEngine::from_config(&EngineConfig::default().with_workers(2))),
            Box::new(GaloisEngine::new(2)),
            Box::new(ActorEngine::from_config(&EngineConfig::default().with_workers(2))),
        ];
        for engine in engines {
            let out = engine.run(&circuit, &stimulus, &delays);
            check_conservation(&out)
                .unwrap_or_else(|e| panic!("case {case}, {}: {e}", engine.name()));
            check_equivalent(&reference, &out)
                .unwrap_or_else(|e| panic!("case {case}, {}: {e}", engine.name()));
        }
    }
}

/// Event-count conservation law: delivered events equal the analytic
/// path-count formula of the DAG (per stimulus event at each input).
#[test]
fn event_totals_follow_path_counts() {
    let mut rng = StdRng::seed_from_u64(0xDE5_0002);
    for case in 0..24 {
        let circuit = random_circuit(&mut rng);
        let stimulus = random_stimulus(&mut rng, circuit.inputs().len());
        let out = SeqWorksetEngine::new().run(&circuit, &stimulus, &DelayModel::standard());
        // delivered = Σ_inputs k_i * (1 + Σ_edges paths from input i to the
        // edge's source), where k_i is input i's stimulus event count —
        // every processed event re-emits once per out-edge.
        let mut total = 0u64;
        for (ix, &input) in circuit.inputs().iter().enumerate() {
            let k = stimulus.input_events(ix).len() as u64;
            if k == 0 {
                continue;
            }
            let mut emit = vec![0u64; circuit.num_nodes()];
            emit[input.index()] = 1;
            for &id in circuit.topo_order() {
                let node = circuit.node(id);
                if !node.fanin.is_empty() {
                    emit[id.index()] = node.fanin.iter().map(|s| emit[s.index()]).sum();
                }
            }
            let edge_events: u64 = circuit.edges().map(|(src, _)| emit[src.index()]).sum();
            total += k * (1 + edge_events);
        }
        assert_eq!(out.stats.events_delivered, total, "case {case}");
    }
}

/// Output waveforms are time-monotone and NULL accounting is exact.
#[test]
fn waveforms_monotone_and_nulls_exact() {
    let mut rng = StdRng::seed_from_u64(0xDE5_0003);
    for case in 0..24 {
        let circuit = random_circuit(&mut rng);
        let stimulus = random_stimulus(&mut rng, circuit.inputs().len());
        let out = HjEngine::from_config(&EngineConfig::default().with_workers(2))
            .run(&circuit, &stimulus, &DelayModel::standard());
        for wf in &out.waveforms {
            for pair in wf.events().windows(2) {
                assert!(pair[0].time <= pair[1].time, "case {case}");
            }
        }
        assert_eq!(out.stats.nulls_sent as usize, circuit.num_edges(), "case {case}");
    }
}
