//! Recovery suite (DESIGN.md §12): a rank killed at a checkpoint
//! barrier must be restartable from the newest consistent snapshot, and
//! the restored run must produce bit-identical observables to an
//! uninterrupted reference run — on the in-process sharded engine and
//! over the real TCP fabric, at multiple shard counts.
//!
//! The kill is injected by the `kill_rank_at_epoch` fault (no real
//! process kill needed): the targeted rank's shard cores panic at the
//! epoch barrier *before* that epoch's snapshot is written, so recovery
//! always resumes from an earlier epoch and replays real work. The
//! injection latch is sticky across `FaultPlan::reset`, which is what
//! lets the in-harness recovery loop share one plan across attempts
//! without re-suffering the fault.

use std::path::PathBuf;

use circuit::generators::kogge_stone_adder;
use circuit::{Circuit, DelayModel, Stimulus};
use des::engine::seq::SeqWorksetEngine;
use des::engine::{build, Engine, EngineConfig};
use des::validate::check_equivalent;
use des::{latest_consistent_epoch, FaultPlan, SimError, SimOutput};

/// Events per shard between checkpoint epochs: small enough that a run
/// of the fixture crosses many epochs, so "kill at epoch 2" always
/// fires mid-run with real state in the snapshot.
const EVERY: u64 = 40;

fn fixture() -> (Circuit, Stimulus, DelayModel) {
    let c = kogge_stone_adder(16);
    let s = Stimulus::random_vectors(&c, 12, 10, 42);
    (c, s, DelayModel::standard())
}

fn reference(c: &Circuit, s: &Stimulus, d: &DelayModel) -> SimOutput {
    SeqWorksetEngine::new().run(c, s, d)
}

/// A fresh per-test checkpoint directory (tests run concurrently in one
/// process; stale state from an earlier run must never leak in).
fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("des-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sharded_kill_then_restore_matches_reference() {
    let (c, s, d) = fixture();
    let reference = reference(&c, &s, &d);
    for k in [2usize, 4] {
        let dir = ckpt_dir(&format!("sharded-k{k}"));

        // First life: checkpoint every EVERY events, die at epoch 2.
        let cfg = EngineConfig::default()
            .with_shards(k)
            .with_checkpoints(EVERY, &dir)
            .with_fault_plan(FaultPlan::seeded(7).kill_rank_at_epoch(0, 2));
        let err = build("sharded", &cfg)
            .try_run(&c, &s, &d)
            .expect_err("k={k}: the injected kill must fail the run");
        match err {
            SimError::Transport { epoch, ref context, .. } => {
                assert_eq!(epoch, Some(2), "k={k}: kill epoch in the error");
                assert!(context.contains("injected rank kill"), "k={k}: {context}");
            }
            other => panic!("k={k}: expected Transport, got {other}"),
        }
        // The kill fired before epoch 2's snapshot: only epoch 1 (or a
        // later consistent one from a racing shard — never 2+) may load.
        let epoch = latest_consistent_epoch(&dir, 1)
            .unwrap_or_else(|| panic!("k={k}: no consistent checkpoint after the kill"));
        assert_eq!(epoch, 1, "k={k}: epoch 2 must never have completed");

        // Second life: restore and run to completion, no faults.
        let out = build(
            "sharded",
            &EngineConfig::default()
                .with_shards(k)
                .with_checkpoints(EVERY, &dir)
                .with_restore(true),
        )
        .try_run(&c, &s, &d)
        .unwrap_or_else(|e| panic!("k={k}: restored run failed: {e}"));
        check_equivalent(&reference, &out)
            .unwrap_or_else(|e| panic!("k={k}: restored observables diverge: {e}"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sharded_restore_with_empty_dir_runs_fresh() {
    // `--restore` on a directory with no (consistent) checkpoint is a
    // cold start, not an error: the recovery supervisor retries through
    // this path when a run dies before its first checkpoint.
    let (c, s, d) = fixture();
    let dir = ckpt_dir("sharded-empty");
    let out = build(
        "sharded",
        &EngineConfig::default()
            .with_shards(2)
            .with_checkpoints(EVERY, &dir)
            .with_restore(true),
    )
    .try_run(&c, &s, &d)
    .expect("fresh start under --restore");
    check_equivalent(&reference(&c, &s, &d), &out).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_rank_kill_recovers_in_harness() {
    // The in-process TCP harness supervises its own recovery: rank 1 is
    // killed at epoch 2, the fabric tears down, and the retry restores
    // from the newest consistent epoch — one try_run call, one answer.
    let (c, s, d) = fixture();
    let reference = reference(&c, &s, &d);
    for k in [2usize, 4] {
        let dir = ckpt_dir(&format!("tcp-kill-k{k}"));
        let cfg = EngineConfig::default()
            .with_shards(k)
            .with_processes(2)
            .with_checkpoints(EVERY, &dir)
            .with_recovery_attempts(3)
            .with_fault_plan(FaultPlan::seeded(9).kill_rank_at_epoch(1, 2));
        let out = build("tcp-sharded", &cfg)
            .try_run(&c, &s, &d)
            .unwrap_or_else(|e| panic!("k={k}: recovery did not complete: {e}"));
        check_equivalent(&reference, &out)
            .unwrap_or_else(|e| panic!("k={k}: recovered observables diverge: {e}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn tcp_link_drop_recovers_in_harness() {
    // A severed link (reader fails as if the socket died) is the other
    // recoverable fault family: same supervisor, same restore path.
    let (c, s, d) = fixture();
    let reference = reference(&c, &s, &d);
    let dir = ckpt_dir("tcp-drop");
    let cfg = EngineConfig::default()
        .with_shards(2)
        .with_processes(2)
        .with_batch_msgs(1) // every message is a frame: the drop fires early
        .with_checkpoints(EVERY, &dir)
        .with_recovery_attempts(3)
        .with_fault_plan(FaultPlan::seeded(11).drop_link(0, 30));
    let out = build("tcp-sharded", &cfg)
        .try_run(&c, &s, &d)
        .unwrap_or_else(|e| panic!("recovery after link drop failed: {e}"));
    check_equivalent(&reference, &out).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unrecoverable_errors_are_not_retried() {
    // A kill with no recovery budget surfaces the structured error; and
    // without checkpoints configured the budget is forced to zero.
    let (c, s, d) = fixture();
    let dir = ckpt_dir("tcp-nobudget");
    let cfg = EngineConfig::default()
        .with_shards(2)
        .with_processes(2)
        .with_checkpoints(EVERY, &dir)
        .with_fault_plan(FaultPlan::seeded(13).kill_rank_at_epoch(1, 2));
    let err = build("tcp-sharded", &cfg)
        .try_run(&c, &s, &d)
        .expect_err("no recovery budget: the kill must surface");
    assert!(
        matches!(err, SimError::Transport { .. } | SimError::TaskPanicked { .. }),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
