//! Randomized tests for the tooling layers: the netlist text format must
//! round-trip *any* circuit the generators can produce, and the lock
//! registry must maintain its held-set invariants under arbitrary
//! operation sequences. Fixed-seed RNG keeps every run deterministic.

use circuit::generators::{random_layered, RandomCircuitConfig};
use circuit::{evaluate, netlist, Logic};
use hj::LockRegistry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Any random circuit survives a netlist round trip with its structure
/// and behaviour intact.
#[test]
fn netlist_round_trips_random_circuits() {
    let mut rng = StdRng::seed_from_u64(0x7001);
    for case in 0..32 {
        let original = random_layered(RandomCircuitConfig {
            inputs: rng.gen_range(1usize..6),
            layers: rng.gen_range(1usize..5),
            width: rng.gen_range(1usize..8),
            seed: rng.gen(),
        });
        let vector: u64 = rng.gen();
        let text = netlist::serialize(&original);
        let reloaded = netlist::parse(&text).expect("own serialization parses");
        assert_eq!(reloaded.num_nodes(), original.num_nodes(), "case {case}");
        assert_eq!(reloaded.num_edges(), original.num_edges(), "case {case}");
        assert_eq!(reloaded.inputs().len(), original.inputs().len(), "case {case}");
        assert_eq!(reloaded.outputs().len(), original.outputs().len(), "case {case}");
        // Functional equivalence on a random vector (inputs/outputs keep
        // their order through the round trip).
        let assignment: Vec<Logic> = (0..original.inputs().len())
            .map(|i| Logic::from_bit(vector >> (i % 64)))
            .collect();
        let a = evaluate(&original, &assignment).output_values(&original);
        let b = evaluate(&reloaded, &assignment).output_values(&reloaded);
        assert_eq!(a, b, "case {case}");
    }
}

/// The lock registry's held set always matches the raw lock states:
/// after any sequence of try_lock/release/release_all, every lock the
/// locker reports held is locked, and dropping the locker frees
/// everything.
#[test]
fn lock_registry_invariants_hold_under_random_ops() {
    let mut rng = StdRng::seed_from_u64(0x7002);
    for case in 0..32 {
        let registry = LockRegistry::new(16);
        {
            let mut locker = registry.locker();
            let ops = rng.gen_range(1usize..64);
            for _ in 0..ops {
                let op: u64 = rng.gen_range(0..3);
                let id: u32 = rng.gen_range(0u32..16);
                match op {
                    0 => {
                        // Re-entrant acquisition is a caller bug (debug
                        // builds assert on it), so only acquire fresh ids.
                        if !locker.holds(id) {
                            assert!(
                                locker.try_lock(id),
                                "case {case}: uncontended acquisition succeeds"
                            );
                        }
                    }
                    1 => {
                        if locker.holds(id) {
                            locker.release(id);
                            assert!(!registry.is_locked(id), "case {case}");
                        }
                    }
                    _ => locker.release_all(),
                }
                // Invariant: held ⊆ locked, exactly.
                for probe in 0..16u32 {
                    assert_eq!(locker.holds(probe), registry.is_locked(probe), "case {case}");
                }
            }
        }
        // RAII: everything free after drop.
        for probe in 0..16u32 {
            assert!(!registry.is_locked(probe), "case {case}");
        }
    }
}
