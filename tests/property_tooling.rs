//! Property-based tests for the tooling layers: the netlist text format
//! must round-trip *any* circuit the generators can produce, and the lock
//! registry must maintain its held-set invariants under arbitrary
//! operation sequences.

use circuit::generators::{random_layered, RandomCircuitConfig};
use circuit::{evaluate, netlist, Logic};
use hj::LockRegistry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// Any random circuit survives a netlist round trip with its
    /// structure and behaviour intact.
    #[test]
    fn netlist_round_trips_random_circuits(
        inputs in 1usize..6,
        layers in 1usize..5,
        width in 1usize..8,
        seed in any::<u64>(),
        vector in any::<u64>(),
    ) {
        let original = random_layered(RandomCircuitConfig { inputs, layers, width, seed });
        let text = netlist::serialize(&original);
        let reloaded = netlist::parse(&text).expect("own serialization parses");
        prop_assert_eq!(reloaded.num_nodes(), original.num_nodes());
        prop_assert_eq!(reloaded.num_edges(), original.num_edges());
        prop_assert_eq!(reloaded.inputs().len(), original.inputs().len());
        prop_assert_eq!(reloaded.outputs().len(), original.outputs().len());
        // Functional equivalence on a random vector (inputs/outputs keep
        // their order through the round trip).
        let assignment: Vec<Logic> = (0..original.inputs().len())
            .map(|i| Logic::from_bit(vector >> (i % 64)))
            .collect();
        let a = evaluate(&original, &assignment).output_values(&original);
        let b = evaluate(&reloaded, &assignment).output_values(&reloaded);
        prop_assert_eq!(a, b);
    }

    /// The lock registry's held set always matches the raw lock states:
    /// after any sequence of try_lock/release/release_all, every lock the
    /// locker reports held is locked, and dropping the locker frees
    /// everything.
    #[test]
    fn lock_registry_invariants_hold_under_random_ops(
        ops in prop::collection::vec((0u8..3, 0u32..16), 1..64)
    ) {
        let registry = LockRegistry::new(16);
        {
            let mut locker = registry.locker();
            for (op, id) in ops {
                match op {
                    0 => {
                        // Re-entrant acquisition is a caller bug (debug
                        // builds assert on it), so only acquire fresh ids.
                        if !locker.holds(id) {
                            prop_assert!(locker.try_lock(id), "uncontended acquisition succeeds");
                        }
                    }
                    1 => {
                        if locker.holds(id) {
                            locker.release(id);
                            prop_assert!(!registry.is_locked(id));
                        }
                    }
                    _ => locker.release_all(),
                }
                // Invariant: held ⊆ locked, exactly.
                for probe in 0..16u32 {
                    prop_assert_eq!(locker.holds(probe), registry.is_locked(probe));
                }
            }
        }
        // RAII: everything free after drop.
        for probe in 0..16u32 {
            prop_assert!(!registry.is_locked(probe));
        }
    }
}
