//! Counting-allocator proof of the "disabled obs is free" claim: with
//! the no-op recorder installed, every obs call an engine hot path can
//! make — tracer records, probe spans, counter/gauge/histogram updates —
//! performs zero heap allocations.
//!
//! This lives in its own integration-test binary because the global
//! allocator hook is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The allocation counter is process-global, so the two tests must not
/// overlap: one test's allocations would land inside the other's
/// measurement window when the harness runs them on parallel threads.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

use des::{ObsConfig, Recorder, SpanKind};

/// Every obs operation reachable from an event hot path must be
/// allocation-free on disabled handles.
#[test]
fn disabled_obs_hot_path_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap();
    let recorder = Recorder::off();
    let tracer = recorder.tracer("hot");
    let counter = recorder.counter("c", &[("engine", "x")]);
    let gauge = recorder.gauge("g", &[("engine", "x")]);
    let histogram = recorder.histogram("h", &[("engine", "x")]);
    assert!(!recorder.is_enabled());

    let before = allocations();
    for i in 0..50_000u64 {
        tracer.instant(SpanKind::EventDeliver, i, i);
        tracer.begin(SpanKind::NodeRun, i);
        tracer.end(SpanKind::NodeRun, i, 1);
        counter.inc();
        counter.add(3);
        gauge.set(i);
        gauge.set_max(i);
        histogram.record(i);
    }
    // Reading empty traces off a disabled recorder is also free
    // (`Vec::new` does not allocate).
    assert!(recorder.recent_traces(16).is_empty());
    assert_eq!(
        allocations() - before,
        0,
        "disabled obs handles allocated on the hot path"
    );
}

/// Sanity check on the harness itself: the same loop against an enabled
/// recorder must be observed by the counter (ring setup + registry).
#[test]
fn enabled_obs_is_visible_to_the_allocation_counter() {
    let _serial = SERIAL.lock().unwrap();
    let before = allocations();
    let recorder = Recorder::new(&ObsConfig::enabled());
    let tracer = recorder.tracer("hot");
    for i in 0..100u64 {
        tracer.instant(SpanKind::EventDeliver, i, i);
    }
    assert!(
        allocations() > before,
        "enabled recorder setup should allocate"
    );
    assert_eq!(recorder.recent_traces(200)[0].records.len(), 100);
}
