//! Determinism, engine-equivalence and fault-containment tests for the
//! sim-model workloads (PHOLD and the M/M/c queueing network).
//!
//! The contract under test: for a fixed graph and seed, the
//! deterministic half of a [`model::ModelOutput`] (observables +
//! event-stream checksum) is bit-identical across engines and shard
//! counts, and RunPolicy fault semantics survive the component adapter.

use std::time::Duration;

use des::{EngineConfig, FaultPlan, SimError};
use model::phold::{self, PholdConfig};
use model::queueing::{self, MmcSpec};
use model::{try_run, Component, Ctx, EventSource, ModelGraph, ModelOutput};

fn phold_graph(seed: u64) -> ModelGraph<phold::PholdToken> {
    phold::build(
        PholdConfig {
            lps: 8,
            population: 3,
            lookahead: 3,
            remote_fraction: 0.6,
            mean_delay: 7.0,
        },
        seed,
        1_500,
    )
}

fn mmc_graph(seed: u64) -> ModelGraph<queueing::Job> {
    queueing::build(
        MmcSpec {
            stations: 3,
            servers: 2,
            mean_interarrival: 6.0,
            mean_service: 9.0,
            feedback: Some(0.3),
        },
        seed,
        3_000,
    )
}

fn run_seq<P: model::Payload>(g: ModelGraph<P>) -> ModelOutput {
    model::run("model-seq", &EngineConfig::default(), g)
}

fn run_sharded<P: model::Payload>(g: ModelGraph<P>, k: usize) -> ModelOutput {
    model::run("model-sharded", &EngineConfig::new().with_shards(k), g)
}

#[test]
fn phold_is_deterministic_across_repeat_runs() {
    let a = run_seq(phold_graph(42));
    let b = run_seq(phold_graph(42));
    assert_eq!(a.observables, b.observables);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.stats.events_delivered, b.stats.events_delivered);
    // A different seed must visibly change the trajectory.
    let c = run_seq(phold_graph(43));
    assert_ne!(a.checksum, c.checksum);
}

#[test]
fn phold_matches_across_engines_and_shard_counts() {
    let reference = run_seq(phold_graph(7));
    assert!(reference.stats.events_delivered > 100, "workload too small to be meaningful");
    for k in [1, 2, 4] {
        let sharded = run_sharded(phold_graph(7), k);
        reference.assert_equivalent(&sharded);
        assert_eq!(
            reference.stats.events_delivered, sharded.stats.events_delivered,
            "event count diverges at K={k}"
        );
    }
}

#[test]
fn phold_is_bit_identical_across_pin_policies_and_shard_counts() {
    // Core pinning is a placement decision, not a semantic one: the
    // observables and the event-stream checksum must be the same bytes
    // under every pin policy at every shard count, even when shards
    // outnumber cores (compact/spread wrap instead of failing).
    let reference = run_seq(phold_graph(11));
    for k in [1usize, 2, 4, 8] {
        for policy in [des::PinPolicy::None, des::PinPolicy::Compact, des::PinPolicy::Spread] {
            let label = policy.label();
            let cfg = EngineConfig::new().with_shards(k).with_pinning(policy);
            let out = model::run("model-sharded", &cfg, phold_graph(11));
            reference.assert_equivalent(&out);
            assert_eq!(reference.checksum, out.checksum, "checksum diverges at k={k} pin={label}");
            assert_eq!(
                reference.observables, out.observables,
                "observables diverge at k={k} pin={label}"
            );
        }
    }
}

#[test]
fn queueing_network_matches_across_engines_and_shard_counts() {
    let reference = run_seq(mmc_graph(99));
    let completed = reference
        .observables
        .iter()
        .find(|(k, _)| k == "sink.completed")
        .map(|(_, v)| *v)
        .expect("sink observable");
    assert!(completed > 10, "workload too small to be meaningful");
    for k in [1, 2, 4] {
        let sharded = run_sharded(mmc_graph(99), k);
        reference.assert_equivalent(&sharded);
    }
}

/// A component that panics when it sees its trigger timestamp — the
/// "user bug" whose blast radius the adapter must contain.
struct Grenade {
    trigger_at: u64,
    seen: u64,
}

impl Component<u64> for Grenade {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(0, 2, 1);
    }
    fn on_event(&mut self, _src: EventSource, n: u64, ctx: &mut Ctx<'_, u64>) {
        self.seen += 1;
        assert!(ctx.now() < self.trigger_at, "boom: handler bug at t={}", ctx.now());
        ctx.send(0, 2, n + 1);
    }
    fn observables(&self, out: &mut Vec<(String, u64)>) {
        out.push(("seen".into(), self.seen));
    }
}

fn grenade_graph(trigger_at: u64) -> ModelGraph<u64> {
    let mut g = ModelGraph::new(1, 1_000);
    let a = g.add(
        "a",
        Grenade {
            trigger_at,
            seen: 0,
        },
    );
    let b = g.add(
        "b",
        Grenade {
            trigger_at: u64::MAX,
            seen: 0,
        },
    );
    g.link(a, b, 2);
    g.link(b, a, 2);
    g
}

#[test]
fn component_panic_is_contained_and_attributed_in_seq() {
    let err = try_run("model-seq", &EngineConfig::default(), grenade_graph(50))
        .expect_err("handler panic must surface as an error");
    match err {
        SimError::TaskPanicked { node, payload } => {
            assert_eq!(node, Some(0), "panic must be attributed to component 'a'");
            assert!(payload.contains("boom"), "panic payload lost: {payload}");
        }
        other => panic!("expected TaskPanicked, got {other}"),
    }
}

#[test]
fn component_panic_is_contained_and_attributed_in_sharded() {
    for k in [2, 4] {
        let err = try_run(
            "model-sharded",
            &EngineConfig::new().with_shards(k),
            grenade_graph(50),
        )
        .expect_err("handler panic must surface as an error");
        match err {
            SimError::TaskPanicked { node, payload } => {
                assert_eq!(node, Some(0), "panic must be attributed to component 'a' at K={k}");
                assert!(payload.contains("boom"), "panic payload lost: {payload}");
            }
            other => panic!("expected TaskPanicked at K={k}, got {other}"),
        }
    }
}

#[test]
fn injected_shard_panic_surfaces_through_model_engines() {
    let cfg = EngineConfig::new()
        .with_shards(2)
        .with_fault_plan(FaultPlan::seeded(5).panic_in_shard(1));
    let err = try_run("model-sharded", &cfg, phold_graph(3))
        .expect_err("injected shard fault must surface");
    assert!(
        matches!(err, SimError::TaskPanicked { node: None, .. }),
        "expected injected shard panic, got {err}"
    );
}

#[test]
fn wedged_run_trips_the_watchdog_with_a_snapshot() {
    let cfg = EngineConfig::new()
        .with_shards(2)
        .with_fault_plan(FaultPlan::seeded(8).wedged())
        .with_watchdog(Some(Duration::from_millis(100)));
    let err = try_run("model-sharded", &cfg, phold_graph(4))
        .expect_err("wedged run must trip the watchdog");
    match err {
        SimError::NoProgress { snapshot } => {
            assert_eq!(snapshot.engine, "model-sharded");
            assert!(snapshot.notes.iter().any(|n| n.contains("fault injection")));
        }
        other => panic!("expected NoProgress, got {other}"),
    }
}

#[test]
fn seq_engine_honours_fault_plans_too() {
    let cfg = EngineConfig::new().with_fault_plan(FaultPlan::seeded(2).panic_in_shard(0));
    let err = try_run("model-seq", &cfg, mmc_graph(1)).expect_err("injected fault must surface");
    assert!(matches!(err, SimError::TaskPanicked { node: None, .. }));
}
