//! Cross-kernel integration tests for the generic PDES substrate (the
//! paper's §6 future-work direction): every network family must produce
//! identical observables on the sequential and parallel drivers, at every
//! worker count, with exact null-message accounting on cycles.

use pdes::kernel::{ParKernel, SeqKernel};
use pdes::queueing::{self, NetworkSpec};

const HORIZON: u64 = 80_000;

fn check_spec(spec: &NetworkSpec) {
    let seq = queueing::run(spec, &SeqKernel::new(), HORIZON);
    assert_eq!(
        seq.stats.ties_observed, 0,
        "{}: jitter must keep the trajectory tie-free",
        spec.name
    );
    assert_eq!(
        seq.stats.events_delivered + seq.stats.self_scheduled,
        seq.stats.events_processed,
        "{}: every delivered/self event is processed exactly once",
        spec.name
    );
    for workers in [1, 2, 4] {
        let par = queueing::run(spec, &ParKernel::new(workers), HORIZON);
        assert_eq!(
            seq.observables(),
            par.observables(),
            "{} with {workers} workers",
            spec.name
        );
    }
}

#[test]
fn tandem_networks_match() {
    check_spec(&NetworkSpec::tandem(1, 0.5, 201));
    check_spec(&NetworkSpec::tandem(5, 0.75, 202));
}

#[test]
fn feedback_networks_match() {
    check_spec(&NetworkSpec::feedback(0.2, 203));
    check_spec(&NetworkSpec::feedback(0.5, 204));
}

#[test]
fn ring_networks_match() {
    check_spec(&NetworkSpec::ring(3, 0.4, 205));
    check_spec(&NetworkSpec::ring(6, 0.6, 206));
}

#[test]
fn jackson_network_matches() {
    check_spec(&NetworkSpec::jackson(207));
}

#[test]
fn fork_join_network_matches() {
    check_spec(&NetworkSpec::fork_join(208));
}

#[test]
fn ring_packets_all_exit_eventually() {
    // With p_exit = 0.5 and a long horizon, virtually all packets leave.
    let spec = NetworkSpec::ring(4, 0.5, 209);
    let out = queueing::run(&spec, &SeqKernel::new(), 200_000);
    assert!(
        out.sinks[0].received >= 240,
        "only {} of 250 packets exited",
        out.sinks[0].received
    );
    assert!(out.stats.nulls_sent > 0);
}

#[test]
fn observables_stable_across_many_seeds() {
    // A quick sweep: no seed may produce a seq/par divergence (ties are
    // ~impossible thanks to sub-tick jitter, but this is the regression
    // net for the tie-freedom assumption).
    for seed in 0..12 {
        let spec = NetworkSpec::feedback(0.3, 1_000 + seed);
        let seq = queueing::run(&spec, &SeqKernel::new(), 40_000);
        let par = queueing::run(&spec, &ParKernel::new(3), 40_000);
        assert_eq!(seq.stats.ties_observed, 0, "seed {seed}");
        assert_eq!(seq.observables(), par.observables(), "seed {seed}");
    }
}

mod randomized {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // 12 cases each — every case runs one seq + one par simulation, so the
    // counts are kept modest; seeds are fixed for deterministic coverage.

    /// Arbitrary tandem configurations: the parallel kernel must
    /// reproduce the sequential kernel bit for bit.
    #[test]
    fn random_tandems_match() {
        let mut rng = StdRng::seed_from_u64(0x9de5_0001);
        for case in 0..12 {
            let k = rng.gen_range(1usize..5);
            let load = rng.gen_range(0.2f64..0.9);
            let seed: u64 = rng.gen();
            let spec = NetworkSpec::tandem(k, load, seed);
            let seq = queueing::run(&spec, &SeqKernel::new(), 30_000);
            assert_eq!(seq.stats.ties_observed, 0, "case {case} seed {seed}");
            let par = queueing::run(&spec, &ParKernel::new(2), 30_000);
            assert_eq!(
                seq.observables(),
                par.observables(),
                "case {case} seed {seed}"
            );
        }
    }

    /// Arbitrary feedback loops (cyclic): same contract, plus the
    /// null-message protocol must terminate every time.
    #[test]
    fn random_feedback_loops_match() {
        let mut rng = StdRng::seed_from_u64(0x9de5_0002);
        for case in 0..12 {
            let p_loop = rng.gen_range(0.05f64..0.6);
            let seed: u64 = rng.gen();
            let spec = NetworkSpec::feedback(p_loop, seed);
            let seq = queueing::run(&spec, &SeqKernel::new(), 30_000);
            assert_eq!(seq.stats.ties_observed, 0, "case {case} seed {seed}");
            let par = queueing::run(&spec, &ParKernel::new(3), 30_000);
            assert_eq!(
                seq.observables(),
                par.observables(),
                "case {case} seed {seed}"
            );
        }
    }
}
