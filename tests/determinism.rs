//! Determinism: the parallel engines may interleave differently on every
//! run, but the deterministic observables must never change — across
//! repetitions, worker counts, and optimization configurations.

use std::sync::Arc;

use circuit::generators::{kogge_stone_adder, wallace_multiplier};
use circuit::{DelayModel, Stimulus};
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::seq::SeqWorksetEngine;
use des::engine::sharded::ShardedEngine;
use des::engine::{build, Engine, EngineConfig};
use des::validate::observables;
use des::PartitionStrategy;
use galois::GaloisEngine;
use hj::HjRuntime;

#[test]
fn hj_engine_is_deterministic_across_runs() {
    let c = kogge_stone_adder(12);
    let s = Stimulus::random_vectors(&c, 6, 2, 7);
    let d = DelayModel::standard();
    let engine = build("hj", &EngineConfig::default().with_workers(4));
    let first = observables(&engine.run(&c, &s, &d));
    for rep in 0..5 {
        let again = observables(&engine.run(&c, &s, &d));
        assert_eq!(first, again, "repetition {rep} diverged");
    }
}

#[test]
fn observables_independent_of_worker_count() {
    let c = wallace_multiplier(6);
    let s = Stimulus::random_vectors(&c, 3, 3, 8);
    let d = DelayModel::standard();
    let reference = observables(&SeqWorksetEngine::new().run(&c, &s, &d));
    for workers in [1, 2, 3, 8] {
        let cfg = EngineConfig::default().with_workers(workers);
        for name in ["hj", "actor", "timewarp"] {
            let got = observables(&build(name, &cfg).run(&c, &s, &d));
            assert_eq!(reference, got, "{name} with {workers} workers");
        }
        let ga = observables(&GaloisEngine::new(workers).run(&c, &s, &d));
        assert_eq!(reference, ga, "galois with {workers} workers");
    }
}

#[test]
fn observables_independent_of_hj_config() {
    let c = kogge_stone_adder(8);
    let s = Stimulus::random_vectors(&c, 8, 1, 9); // dense ties
    let d = DelayModel::standard();
    let reference = observables(&SeqWorksetEngine::new().run(&c, &s, &d));
    let rt = Arc::new(HjRuntime::new(3));
    for per_port in [false, true] {
        for early in [false, true] {
            for avoid in [false, true] {
                let config = HjEngineConfig {
                    per_port_locks: per_port,
                    early_port_release: early,
                    avoid_redundant_spawns: avoid,
                };
                let engine = HjEngine::with_config(Arc::clone(&rt), config);
                let got = observables(&engine.run(&c, &s, &d));
                assert_eq!(reference, got, "config {config:?}");
            }
        }
    }
}

#[test]
fn sharded_engine_is_deterministic_across_runs() {
    // The cross-shard interleaving (mailbox arrival order, lookahead
    // promise timing) varies freely between runs; the observables must
    // not.
    let c = kogge_stone_adder(12);
    let s = Stimulus::random_vectors(&c, 6, 2, 7);
    let d = DelayModel::standard();
    let engine = build("sharded", &EngineConfig::default().with_shards(4));
    let first = observables(&engine.run(&c, &s, &d));
    for rep in 0..5 {
        let again = observables(&engine.run(&c, &s, &d));
        assert_eq!(first, again, "repetition {rep} diverged");
    }
}

#[test]
fn sharded_observables_independent_of_shard_count_and_strategy() {
    let c = wallace_multiplier(6);
    let s = Stimulus::random_vectors(&c, 3, 3, 8);
    let d = DelayModel::standard();
    let reference = observables(&SeqWorksetEngine::new().run(&c, &s, &d));
    for strategy in [
        PartitionStrategy::RoundRobin,
        PartitionStrategy::BfsLayered,
        PartitionStrategy::GreedyCut,
    ] {
        for k in [1, 2, 3, 8] {
            let engine = ShardedEngine::from_config(
                &EngineConfig::default().with_shards(k).with_strategy(strategy),
            );
            let got = observables(&engine.run(&c, &s, &d));
            assert_eq!(reference, got, "sharded k={k} {strategy:?}");
        }
    }
}

#[test]
fn total_events_match_path_count_law() {
    // Analytic cross-check of the "# total events" determinism: delivered
    // events = Σ over vectors of Σ over edges of (paths from inputs to the
    // edge's source) … computed directly by a DAG sweep.
    let c = kogge_stone_adder(8);
    let vectors = 3;
    let s = Stimulus::random_vectors(&c, vectors, 5, 10);
    let d = DelayModel::standard();
    let out = SeqWorksetEngine::new().run(&c, &s, &d);

    // paths[v] = number of initial events that reach v per vector
    // (inputs emit 1 per vector; every node re-emits the sum of its
    // in-edge arrivals on each out-edge).
    let mut emitted = vec![0u64; c.num_nodes()];
    for &i in c.inputs() {
        emitted[i.index()] = 1;
    }
    for &id in c.topo_order() {
        let node = c.node(id);
        if !node.fanin.is_empty() {
            let received: u64 = node.fanin.iter().map(|s| emitted[s.index()]).sum();
            emitted[id.index()] = received;
        }
    }
    let per_vector: u64 = c
        .edges()
        .map(|(src, _)| emitted[src.index()])
        .sum::<u64>()
        // plus the initial events delivered to the input nodes themselves
        + c.inputs().len() as u64;
    assert_eq!(out.stats.events_delivered, per_vector * vectors as u64);
}
