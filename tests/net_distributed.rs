//! Distributed-engine differential tests: the TCP fabric must produce
//! observables bit-identical to the loopback sharded engine and the
//! sequential oracle, and peer failures must surface as structured
//! errors instead of hangs.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use circuit::generators::kogge_stone_adder;
use circuit::{DelayModel, Stimulus};
use des::engine::seq::SeqWorksetEngine;
use des::engine::sharded::ShardedEngine;
use des::engine::{Engine, EngineConfig};
use des::{config_digest, run_node, DistConfig, FaultPlan, PartitionStrategy, SimError};
use net::{encode_frame, read_frame, Frame};

#[test]
fn tcp_matches_loopback_and_seq_on_ks64() {
    let circuit = kogge_stone_adder(64);
    let stimulus = Stimulus::random_vectors(&circuit, 6, 10, 0xD15C);
    let delays = DelayModel::standard();
    let seq = SeqWorksetEngine::new().run(&circuit, &stimulus, &delays);
    for k in [2usize, 4] {
        let cfg = EngineConfig::default()
            .with_shards(k)
            .with_strategy(PartitionStrategy::GreedyCut);
        let loopback = ShardedEngine::from_config(&cfg).run(&circuit, &stimulus, &delays);
        let tcp = des::TcpShardedEngine::from_config(&cfg.clone().with_processes(2))
            .run(&circuit, &stimulus, &delays);
        for out in [&loopback, &tcp] {
            assert_eq!(out.node_values, seq.node_values, "k={k}");
            assert_eq!(
                out.stats.events_delivered, seq.stats.events_delivered,
                "k={k}"
            );
            for (a, b) in out.waveforms.iter().zip(&seq.waveforms) {
                assert_eq!(a.settled(), b.settled(), "k={k}");
            }
        }
        // Same partition, same cut: the payload traffic crossing shard
        // boundaries is deterministic and transport-independent.
        assert_eq!(
            tcp.stats.cut_events_sent, loopback.stats.cut_events_sent,
            "k={k}: cut traffic must not depend on the transport"
        );
        // And the TCP run really went through the wire.
        assert!(tcp.stats.net_frames_sent > 0, "k={k}");
        assert!(tcp.stats.net_bytes_sent > 0, "k={k}");
        assert_eq!(loopback.stats.net_frames_sent, 0, "loopback sends no frames");
    }
}

#[test]
fn batching_counters_are_consistent() {
    let circuit = kogge_stone_adder(64);
    let stimulus = Stimulus::random_vectors(&circuit, 4, 10, 0xBA7C);
    let delays = DelayModel::standard();
    let cfg = EngineConfig::default().with_shards(2).with_processes(2);
    let unbatched = des::TcpShardedEngine::from_config(&cfg.clone().with_batch_msgs(1))
        .run(&circuit, &stimulus, &delays);
    let batched = des::TcpShardedEngine::from_config(&cfg.clone().with_batch_msgs(64))
        .run(&circuit, &stimulus, &delays);
    // batch=1 flushes on every message: one message per frame, and no
    // flush is ever "forced early".
    assert_eq!(
        unbatched.stats.net_frames_sent,
        unbatched.stats.net_msgs_batched
    );
    assert_eq!(unbatched.stats.net_forced_flushes, 0);
    // batch=64 coalesces: strictly fewer frames than messages, and NULL
    // urgency forces some flushes below the threshold.
    assert!(batched.stats.net_frames_sent < batched.stats.net_msgs_batched);
    assert!(batched.stats.net_forced_flushes > 0);
    // Payload observables agree regardless of batching.
    assert_eq!(unbatched.node_values, batched.node_values);
    assert_eq!(
        unbatched.stats.events_delivered,
        batched.stats.events_delivered
    );
}

/// A fake worker that completes the handshake and then drops dead must
/// produce a structured transport error on the coordinator — promptly,
/// not after (or instead of) a watchdog timeout.
#[test]
fn peer_disconnect_is_structured_error_not_hang() {
    let circuit = kogge_stone_adder(64);
    let stimulus = Stimulus::random_vectors(&circuit, 4, 10, 0xDEAD);
    let delays = DelayModel::standard();
    let num_shards = 2;
    let strategy = PartitionStrategy::GreedyCut;
    let digest = config_digest(&circuit, &stimulus, num_shards, strategy);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr0 = listener.local_addr().unwrap();
    // Rank 1's address is never dialed by rank 0 (higher ranks dial
    // lower), so a placeholder works.
    let addr1 = "127.0.0.1:1".parse().unwrap();

    let fake_peer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr0).unwrap();
        stream
            .write_all(&encode_frame(&Frame::Hello {
                process: 1,
                num_shards: num_shards as u64,
                digest,
                session_epoch: 0,
                features: 0,
            }))
            .unwrap();
        let hello = read_frame(&mut stream).unwrap();
        assert!(matches!(hello, Some(Frame::Hello { process: 0, .. })));
        // Die without a word: rank 0 is now owed shard 1's traffic that
        // will never come.
        drop(stream);
    });

    let cfg = DistConfig {
        process: 0,
        addrs: vec![addr0, addr1],
        num_shards,
        strategy,
        mailbox_capacity: 256,
        batch_msgs: 64,
        watchdog: Some(Duration::from_secs(30)),
        connect_deadline: Duration::from_secs(10),
        checkpoint: None,
        restore: false,
        pinning: des::PinPolicy::None,
        arena_capacity: 0,
        telemetry: false,
        telemetry_period: Duration::from_millis(100),
        fleet: None,
    };
    let started = Instant::now();
    let result = run_node(
        &circuit,
        &stimulus,
        &delays,
        listener,
        &cfg,
        Arc::new(FaultPlan::none()),
        &des::Recorder::off(),
    );
    fake_peer.join().unwrap();
    match result {
        Err(SimError::Transport { peer, .. }) => assert_eq!(peer, Some(1)),
        other => panic!("expected a transport error, got {other:?}"),
    }
    // The reader thread reports the EOF the moment it happens; the
    // coordinator must fail well inside the 30s watchdog window.
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "took {:?}",
        started.elapsed()
    );
}
