//! End-to-end tooling flow: generate a circuit, serialize it to the text
//! netlist format, parse it back, simulate the reloaded circuit on two
//! engines, and export the waveforms as VCD — the full workflow a
//! downstream user of the library would run.

use circuit::generators::{c17, kogge_stone_adder, wallace_multiplier};
use circuit::{netlist, DelayModel, Stimulus};
use des::engine::hj::HjEngine;
use des::engine::seq::SeqWorksetEngine;
use des::engine::{Engine, EngineConfig};
use des::validate::check_equivalent;
use des::vcd;

#[test]
fn netlist_roundtrip_preserves_simulation_results() {
    for (name, original) in [
        ("c17", c17()),
        ("ks16", kogge_stone_adder(16)),
        ("mult6", wallace_multiplier(6)),
    ] {
        let text = netlist::serialize(&original);
        let reloaded = netlist::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reloaded.num_nodes(), original.num_nodes(), "{name}");
        assert_eq!(reloaded.num_edges(), original.num_edges(), "{name}");

        let stimulus = Stimulus::random_vectors(&original, 6, 4, 7);
        let delays = DelayModel::standard();
        let a = SeqWorksetEngine::new().run(&original, &stimulus, &delays);
        let b = SeqWorksetEngine::new().run(&reloaded, &stimulus, &delays);
        // Node ids may be renumbered by the round trip (gates are emitted
        // in topological order), but inputs/outputs keep their order, so
        // the externally observable simulation is identical bit for bit.
        assert_eq!(a.stats.events_delivered, b.stats.events_delivered, "{name}");
        assert_eq!(a.waveforms, b.waveforms, "{name}");
    }
}

#[test]
fn vcd_export_is_engine_independent() {
    let circuit = kogge_stone_adder(8);
    let stimulus = Stimulus::random_vectors(&circuit, 5, 3, 13);
    let delays = DelayModel::standard();
    let seq = SeqWorksetEngine::new().run(&circuit, &stimulus, &delays);
    let par = HjEngine::from_config(&EngineConfig::default().with_workers(3))
        .run(&circuit, &stimulus, &delays);
    check_equivalent(&seq, &par).unwrap();
    // VCD is rendered from the settled view, so both engines must emit the
    // byte-identical document.
    let vcd_seq = vcd::to_vcd(&circuit, &seq, "adder");
    let vcd_par = vcd::to_vcd(&circuit, &par, "adder");
    assert_eq!(vcd_seq, vcd_par);
    // Sanity: one $var per output, header wellformed.
    assert_eq!(
        vcd_seq.matches("$var wire 1 ").count(),
        circuit.outputs().len()
    );
    assert!(vcd_seq.starts_with("$date"));
}

#[test]
fn repeated_round_trips_stay_semantically_identical() {
    // serialize ∘ parse may renumber gates (any topological order is a
    // valid emission order), but the circuit's behaviour must survive any
    // number of round trips.
    let original = wallace_multiplier(4);
    let mut current = original.clone();
    for round in 0..3 {
        let text = netlist::serialize(&current);
        current = netlist::parse(&text).unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(current.num_nodes(), original.num_nodes(), "round {round}");
        assert_eq!(current.num_edges(), original.num_edges(), "round {round}");
        // Behavioural identity on a few vectors.
        for word in [0u64, 0x5A, 0xFF, 0x93] {
            let inputs = circuit::from_word(word, 8);
            let a = circuit::evaluate(&original, &inputs).output_values(&original);
            let b = circuit::evaluate(&current, &inputs).output_values(&current);
            assert_eq!(a, b, "round {round}, word {word:02x}");
        }
    }
}
