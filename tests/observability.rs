//! Integration tests for the sim-obs layer across all seven engines:
//! runs must be observably identical with tracing on and off, the
//! published metrics must agree with the returned `SimStats`, the
//! exporters must produce machine-valid output, and stall snapshots
//! must carry recent trace records.

use std::io::{Read, Write};
use std::time::Duration;

use circuit::generators::kogge_stone_adder;
use circuit::{DelayModel, Stimulus};
use des::engine::{try_build, EngineConfig, ENGINE_NAMES};
use des::validate::check_equivalent;
use des::{FaultPlan, ObsConfig, Recorder, SimError, SpanKind};

fn workload() -> (circuit::Circuit, Stimulus, DelayModel) {
    let circuit = kogge_stone_adder(64);
    let stimulus = Stimulus::random_vectors(&circuit, 3, 10, 0x0B5);
    (circuit, stimulus, DelayModel::standard())
}

fn small_cfg() -> EngineConfig {
    EngineConfig::default().with_workers(2).with_shards(2)
}

/// Every engine must produce identical observables with the recorder
/// enabled and disabled, and its published `sim_events_delivered_total`
/// must match the stats it returned.
#[test]
fn engines_agree_with_obs_on_and_off_and_publish_matching_counters() {
    let (circuit, stimulus, delays) = workload();
    for name in ENGINE_NAMES {
        let off = try_build(name, &small_cfg())
            .unwrap()
            .run(&circuit, &stimulus, &delays);

        let recorder = Recorder::new(&ObsConfig::enabled());
        let on = try_build(name, &small_cfg().with_recorder(recorder.clone()))
            .unwrap()
            .run(&circuit, &stimulus, &delays);

        check_equivalent(&off, &on)
            .unwrap_or_else(|e| panic!("{name}: obs changed the observables: {e}"));

        let delivered: Vec<u64> = recorder
            .counter_values()
            .into_iter()
            .filter(|(n, _, _)| n == "sim_events_delivered_total")
            .map(|(_, _, v)| v)
            .collect();
        assert!(
            delivered.contains(&on.stats.events_delivered),
            "{name}: published counter {delivered:?} != stats {}",
            on.stats.events_delivered
        );
        assert!(
            !recorder.recent_traces(4).is_empty(),
            "{name}: enabled run left no trace records"
        );
    }
}

/// A fixed seed must give bit-identical metrics and trace payloads on a
/// deterministic engine: run twice with separate recorders and compare
/// everything except wall-clock timestamps.
#[test]
fn deterministic_engine_traces_and_metrics_are_reproducible() {
    let (circuit, stimulus, delays) = workload();
    let mut dumps = Vec::new();
    for _ in 0..2 {
        let recorder = Recorder::new(&ObsConfig::enabled());
        try_build("seq-workset", &small_cfg().with_recorder(recorder.clone()))
            .unwrap()
            .run(&circuit, &stimulus, &delays);
        let counters = recorder.counter_values();
        let traces: Vec<Vec<(u8, u8, u64, u64)>> = recorder
            .recent_traces(usize::MAX)
            .into_iter()
            .map(|t| {
                t.records
                    .iter()
                    .map(|r| (r.kind, r.phase, r.a, r.b))
                    .collect()
            })
            .collect();
        dumps.push((counters, traces));
    }
    assert_eq!(dumps[0].0, dumps[1].0, "counters differ across identical runs");
    assert_eq!(dumps[0].1, dumps[1].1, "trace payloads differ across identical runs");
}

/// The Perfetto export must be valid JSON whose every trace event has
/// the `ph`/`ts`/`pid`/`tid`/`name` fields the UI requires.
#[test]
fn perfetto_export_round_trips_with_required_fields() {
    let (circuit, stimulus, delays) = workload();
    let recorder = Recorder::new(&ObsConfig::enabled());
    try_build("hj", &small_cfg().with_recorder(recorder.clone()))
        .unwrap()
        .run(&circuit, &stimulus, &delays);
    let json = recorder.perfetto_json("obs-test");
    let doc = obs::json::parse(&json).expect("perfetto export parses");
    let events = doc
        .get("traceEvents")
        .and_then(|j| j.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "hj run produced no trace events");
    for ev in events {
        let ph = ev.get("ph").and_then(|j| j.as_str()).expect("ph field");
        assert!(
            matches!(ph, "B" | "E" | "i" | "X" | "M"),
            "unexpected phase {ph:?}"
        );
        if ph == "M" {
            continue; // metadata events carry args instead of ts
        }
        if ph == "X" {
            // Complete spans must carry a duration for critical-path
            // analysis in the Perfetto UI.
            ev.get("dur").and_then(|j| j.as_f64()).expect("dur field");
        }
        ev.get("ts").and_then(|j| j.as_f64()).expect("ts field");
        ev.get("pid").and_then(|j| j.as_f64()).expect("pid field");
        ev.get("tid").and_then(|j| j.as_f64()).expect("tid field");
        ev.get("name").and_then(|j| j.as_str()).expect("name field");
    }
}

/// Serve the recorder over TCP, fetch `/metrics` the way a scraper
/// would, and lint the exposition format.
#[test]
fn prometheus_endpoint_serves_lintable_exposition() {
    let (circuit, stimulus, delays) = workload();
    let recorder = Recorder::new(&ObsConfig::enabled());
    try_build("sharded", &small_cfg().with_recorder(recorder.clone()))
        .unwrap()
        .run(&circuit, &stimulus, &delays);
    let server =
        obs::prometheus::MetricsServer::serve("127.0.0.1:0", recorder.clone()).expect("bind");
    let mut conn = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    server.stop();
    let body = response.split_once("\r\n\r\n").expect("has body").1;
    assert!(body.contains("sim_events_delivered_total"));
    assert!(body.contains("sim_node_run_ns"));
    let samples = obs::prometheus::lint(body).expect("exposition lints clean");
    assert!(samples > 0);
}

/// A wedged obs-enabled run must hand the watchdog's stall snapshot the
/// last trace records of every registered thread — that context is the
/// point of keeping the rings always on.
#[test]
fn stall_snapshot_carries_recent_traces() {
    let (circuit, stimulus, delays) = workload();
    // `fail_trylock(1.0)` stalls the run in the retry/backoff loop —
    // unlike `wedged()`, which parks tasks *before* any instrumented
    // work, this leaves the trace the watchdog should surface.
    let recorder = Recorder::new(&ObsConfig::enabled());
    let cfg = small_cfg()
        .with_recorder(recorder.clone())
        .with_fault_plan(FaultPlan::seeded(3).fail_trylock(1.0))
        .with_watchdog(Some(Duration::from_millis(200)));
    let err = try_build("hj", &cfg)
        .unwrap()
        .try_run(&circuit, &stimulus, &delays)
        .expect_err("wedged run must not complete");
    let SimError::NoProgress { snapshot } = err else {
        panic!("expected NoProgress, got {err}");
    };
    assert!(
        !snapshot.traces.is_empty(),
        "snapshot has no thread trace dumps"
    );
    let records: usize = snapshot.traces.iter().map(|t| t.records.len()).sum();
    assert!(records > 0, "snapshot trace dumps are all empty");
    // A wedged hj run spins on trylock retries and backoff — exactly the
    // unsampled diagnostic records the ring must retain.
    let kinds: Vec<_> = snapshot
        .traces
        .iter()
        .flat_map(|t| t.records.iter().filter_map(|r| r.span_kind()))
        .collect();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, SpanKind::TrylockRetry | SpanKind::Backoff)),
        "expected retry/backoff records in a wedged run, got {kinds:?}"
    );
    // The snapshot renders them for the operator.
    let text = snapshot.to_string();
    assert!(!text.is_empty());
}
