//! Chandy–Misra termination: NULL messages must traverse every edge
//! exactly once, all queues must drain, and the finish/quiescence-based
//! engines must return — in every stimulus configuration.

use std::sync::Arc;

use circuit::generators::{c17, fanout_tree, inverter_chain, kogge_stone_adder};
use circuit::{DelayModel, Logic, Stimulus, TimedValue};
use des::engine::actor::ActorEngine;
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::seq::SeqWorksetEngine;
use des::engine::{Engine, EngineConfig};
use galois::GaloisEngine;
use hj::HjRuntime;

#[test]
fn null_messages_cover_every_edge() {
    let c = kogge_stone_adder(8);
    let s = Stimulus::random_vectors(&c, 2, 4, 1);
    for engine in engines(2) {
        let out = engine.run(&c, &s, &DelayModel::standard());
        assert_eq!(
            out.stats.nulls_sent as usize,
            c.num_edges(),
            "{}: one NULL per edge",
            engine.name()
        );
    }
}

#[test]
fn empty_stimulus_terminates_everywhere() {
    let c = fanout_tree(3, 2);
    let s = Stimulus::empty(1);
    for engine in engines(3) {
        let out = engine.run(&c, &s, &DelayModel::standard());
        assert_eq!(out.stats.events_delivered, 0, "{}", engine.name());
        assert_eq!(out.stats.nulls_sent as usize, c.num_edges(), "{}", engine.name());
    }
}

#[test]
fn single_silent_input_still_unblocks_downstream() {
    // c17 has gates fed by two different inputs; if one input never fires,
    // its NULL must still advance the gate clocks so the other side's
    // events get processed.
    let c = c17();
    let mut events = vec![Vec::new(); 5];
    events[1] = vec![TimedValue { time: 3, value: Logic::One }];
    let s = Stimulus::from_events(events);
    for engine in engines(2) {
        let out = engine.run(&c, &s, &DelayModel::standard());
        assert!(out.stats.events_delivered > 1, "{}", engine.name());
        assert_eq!(out.stats.events_processed, out.stats.events_delivered);
    }
}

#[test]
fn repeated_runs_do_not_leak_state() {
    // Run the same engine instance many times: termination bookkeeping
    // must fully reset between runs.
    let c = inverter_chain(10);
    let d = DelayModel::standard();
    let rt = Arc::new(HjRuntime::new(2));
    let engine = HjEngine::with_config(rt, HjEngineConfig::default());
    let s = Stimulus::random_vectors(&c, 4, 2, 3);
    let first = engine.run(&c, &s, &d).stats;
    for _ in 0..10 {
        let again = engine.run(&c, &s, &d).stats;
        assert_eq!(first.events_delivered, again.events_delivered);
        assert_eq!(first.nulls_sent, again.nulls_sent);
    }
}

#[test]
fn long_chain_terminates_with_deep_null_cascade() {
    // 400-node chain: the NULL must ripple through 400 sequential hops.
    let c = inverter_chain(400);
    let s = Stimulus::random_vectors(&c, 1, 1, 4);
    for engine in engines(4) {
        let out = engine.run(&c, &s, &DelayModel::standard());
        assert_eq!(out.stats.nulls_sent as usize, c.num_edges(), "{}", engine.name());
        assert_eq!(out.stats.events_processed, out.stats.events_delivered);
    }
}

fn engines(workers: usize) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(SeqWorksetEngine::new()),
        Box::new(HjEngine::from_config(&EngineConfig::default().with_workers(workers))),
        Box::new(GaloisEngine::new(workers)),
        Box::new(ActorEngine::from_config(&EngineConfig::default().with_workers(workers))),
    ]
}
