//! DES as an application: the simulated circuits must compute correct
//! arithmetic end-to-end, through every engine.

use circuit::generators::{kogge_stone_adder, ripple_carry_adder, wallace_multiplier};
use circuit::{Circuit, DelayModel, Logic, Stimulus};
use des::engine::actor::ActorEngine;
use des::engine::hj::HjEngine;
use des::engine::seq::SeqWorksetEngine;
use des::engine::seq_heap::SeqHeapEngine;
use des::engine::{Engine, EngineConfig};
use galois::GaloisEngine;

/// Drive one vector, return the final output word.
fn settle(engine: &dyn Engine, circuit: &Circuit, inputs: &[Logic]) -> u128 {
    let out = engine.run(
        circuit,
        &Stimulus::single_vector(inputs),
        &DelayModel::standard(),
    );
    out.waveforms
        .iter()
        .enumerate()
        .map(|(i, wf)| (wf.final_value().map_or(0u128, |v| v.as_bit() as u128)) << i)
        .sum()
}

fn adder_inputs(bits: usize, a: u64, b: u64, cin: bool) -> Vec<Logic> {
    let mut v = Vec::with_capacity(2 * bits + 1);
    for i in 0..bits {
        v.push(Logic::from_bit(a >> i));
    }
    for i in 0..bits {
        v.push(Logic::from_bit(b >> i));
    }
    v.push(Logic::from_bool(cin));
    v
}

fn engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(SeqWorksetEngine::new()),
        Box::new(SeqHeapEngine::new()),
        Box::new(HjEngine::from_config(&EngineConfig::default().with_workers(2))),
        Box::new(GaloisEngine::new(2)),
        Box::new(ActorEngine::from_config(&EngineConfig::default().with_workers(2))),
    ]
}

#[test]
fn kogge_stone_adds_through_every_engine() {
    let c = kogge_stone_adder(16);
    let cases = [(0u64, 0u64, false), (65_535, 1, false), (40_000, 30_000, true), (12_345, 54_321, false)];
    for engine in engines() {
        for &(a, b, cin) in &cases {
            let got = settle(engine.as_ref(), &c, &adder_inputs(16, a, b, cin));
            assert_eq!(
                got,
                a as u128 + b as u128 + cin as u128,
                "{}: {a}+{b}+{cin}",
                engine.name()
            );
        }
    }
}

#[test]
fn ripple_carry_agrees_with_kogge_stone() {
    let ks = kogge_stone_adder(12);
    let rc = ripple_carry_adder(12);
    let e = SeqWorksetEngine::new();
    for &(a, b) in &[(100u64, 200u64), (4_095, 4_095), (2_048, 2_047)] {
        let x = settle(&e, &ks, &adder_inputs(12, a, b, false));
        let y = settle(&e, &rc, &adder_inputs(12, a, b, false));
        assert_eq!(x, y, "{a}+{b}");
        assert_eq!(x, (a + b) as u128);
    }
}

#[test]
fn multiplier_multiplies_through_every_engine() {
    let c = wallace_multiplier(8);
    let cases = [(0u64, 0u64), (255, 255), (17, 19), (128, 2)];
    for engine in engines() {
        for &(a, b) in &cases {
            let mut inputs = Vec::with_capacity(16);
            for i in 0..8 {
                inputs.push(Logic::from_bit(a >> i));
            }
            for i in 0..8 {
                inputs.push(Logic::from_bit(b >> i));
            }
            let got = settle(engine.as_ref(), &c, &inputs);
            assert_eq!(got, (a * b) as u128, "{}: {a}*{b}", engine.name());
        }
    }
}

#[test]
fn back_to_back_vectors_compute_independent_sums() {
    // Multiple vectors in flight simultaneously (period shorter than the
    // critical path): the *final* vector's sum must still be exact.
    let c = kogge_stone_adder(16);
    let words: Vec<u64> = vec![0x1234, 0xFFFF, 0x0F0F, 0xAAAA];
    // a = word, b = !word & mask, cin=0 → a + b = 0xFFFF for every vector.
    let mut per_input = vec![Vec::new(); c.inputs().len()];
    for (k, &w) in words.iter().enumerate() {
        let t = 1 + k as u64 * 3; // deliberately overlapping
        for i in 0..16 {
            per_input[i].push(circuit::TimedValue { time: t, value: Logic::from_bit(w >> i) });
            per_input[16 + i].push(circuit::TimedValue {
                time: t,
                value: Logic::from_bit(!w >> i),
            });
        }
        per_input[32].push(circuit::TimedValue { time: t, value: Logic::Zero });
    }
    let s = Stimulus::from_events(per_input);
    let out = HjEngine::from_config(&EngineConfig::default().with_workers(3))
        .run(&c, &s, &DelayModel::standard());
    let got: u128 = out
        .waveforms
        .iter()
        .enumerate()
        .map(|(i, wf)| (wf.final_value().map_or(0u128, |v| v.as_bit() as u128)) << i)
        .sum();
    assert_eq!(got, 0xFFFF);
}
