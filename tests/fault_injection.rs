//! Fault-injection suite: every parallel engine must surface injected
//! task panics, forced lock failures, and deliberate wedges as structured
//! [`SimError`]s from `try_run` — never a hang, never a process abort —
//! and leave its runtime reusable for a subsequent clean run.
//!
//! Injection decisions are seeded and counter-based (see `sim-fault`), so
//! each of these tests exercises the same decision stream on every run
//! regardless of thread interleaving.

use std::sync::Arc;
use std::time::{Duration, Instant};

use circuit::generators::{c17, kogge_stone_adder};
use circuit::{Circuit, DelayModel, Stimulus};
use des::engine::actor::ActorEngine;
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::seq::SeqWorksetEngine;
use des::engine::timewarp::TimeWarpEngine;
use des::engine::{Engine, EngineConfig};
use des::validate::check_equivalent;
use des::{FaultPlan, SimError};
use galois::GaloisEngine;
use hj::HjRuntime;

const WORKERS: usize = 2;

/// Deadline for the deliberately wedged runs. The suite asserts the
/// watchdog fires well within an order of magnitude of this.
const WEDGE_DEADLINE: Duration = Duration::from_millis(300);

fn cfg(workers: usize) -> EngineConfig {
    EngineConfig::default().with_workers(workers)
}

fn bench_circuit() -> (Circuit, Stimulus) {
    let c = c17();
    let s = Stimulus::random_vectors(&c, 8, 3, 11);
    (c, s)
}

/// Assert `result` is a structured task-panic error (and specifically not
/// an invariant violation: the engines escalate leaked locks to
/// `InvariantViolation`, so a `TaskPanicked` here also proves the failed
/// run released everything it held).
fn assert_task_panicked(result: Result<des::SimOutput, SimError>, engine: &str) {
    match result {
        Err(SimError::TaskPanicked { payload, .. }) => {
            assert!(
                payload.contains("fault injection") || payload.contains("injected"),
                "{engine}: unexpected panic payload: {payload}"
            );
        }
        Err(other) => panic!("{engine}: expected TaskPanicked, got: {other}"),
        Ok(_) => panic!("{engine}: expected the injected panic to surface, got Ok"),
    }
}

/// Assert a wedged run tripped the watchdog with a populated snapshot,
/// within a small multiple of the configured deadline.
fn assert_no_progress(result: Result<des::SimOutput, SimError>, elapsed: Duration, engine: &str) {
    assert!(
        elapsed < Duration::from_secs(8),
        "{engine}: wedged run took {elapsed:?}; watchdog did not fire in time"
    );
    match result {
        Err(SimError::NoProgress { snapshot }) => {
            assert!(!snapshot.engine.is_empty(), "{engine}: snapshot missing engine name");
            assert!(
                snapshot.stalled_for >= WEDGE_DEADLINE,
                "{engine}: stall {:?} shorter than deadline",
                snapshot.stalled_for
            );
        }
        Err(other) => panic!("{engine}: expected NoProgress, got: {other}"),
        Ok(_) => panic!("{engine}: expected the wedge to trip the watchdog, got Ok"),
    }
}

// ---------------------------------------------------------------------
// Injected task panics → Err(TaskPanicked), runtime reusable afterwards.
// ---------------------------------------------------------------------

#[test]
fn hj_engine_panic_surfaces_and_runtime_survives() {
    let (c, s) = bench_circuit();
    let delays = DelayModel::standard();
    let rt = Arc::new(HjRuntime::new(WORKERS));

    let faulty = HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default())
        .with_fault_plan(FaultPlan::seeded(7).panic_on_spawn(3));
    assert_task_panicked(faulty.try_run(&c, &s, &delays), "hj");

    // The shared runtime must survive the failed run.
    let clean = HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default());
    let out = clean.try_run(&c, &s, &delays).expect("clean run after failure");
    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
}

#[test]
fn actor_engine_panic_surfaces_and_runtime_survives() {
    let (c, s) = bench_circuit();
    let delays = DelayModel::standard();
    let rt = Arc::new(HjRuntime::new(WORKERS));

    let faulty = ActorEngine::on_runtime(Arc::clone(&rt))
        .with_fault_plan(FaultPlan::seeded(7).panic_on_spawn(3));
    assert_task_panicked(faulty.try_run(&c, &s, &delays), "actor");

    let clean = ActorEngine::on_runtime(Arc::clone(&rt));
    let out = clean.try_run(&c, &s, &delays).expect("clean run after failure");
    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
}

#[test]
fn timewarp_engine_panic_surfaces_and_engine_survives() {
    let (c, s) = bench_circuit();
    let delays = DelayModel::standard();

    let faulty =
        TimeWarpEngine::from_config(&cfg(WORKERS)).with_fault_plan(FaultPlan::seeded(7).panic_on_spawn(3));
    assert_task_panicked(faulty.try_run(&c, &s, &delays), "timewarp");

    let out = TimeWarpEngine::from_config(&cfg(WORKERS))
        .try_run(&c, &s, &delays)
        .expect("clean run after failure");
    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
}

#[test]
fn galois_engine_panic_surfaces_and_engine_survives() {
    let (c, s) = bench_circuit();
    let delays = DelayModel::standard();

    let faulty =
        GaloisEngine::new(WORKERS).with_fault_plan(FaultPlan::seeded(7).panic_on_spawn(3));
    assert_task_panicked(faulty.try_run(&c, &s, &delays), "galois");

    let out = GaloisEngine::new(WORKERS)
        .try_run(&c, &s, &delays)
        .expect("clean run after failure");
    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
}

// ---------------------------------------------------------------------
// The sharded conservative engine: panics are contained at the shard
// boundary, and the cross-shard mailbox fabric must drain on every
// failure path (a leaked mailbox would deadlock the next run's threads).
// ---------------------------------------------------------------------

#[test]
fn sharded_engine_panic_surfaces_and_engine_survives() {
    use des::engine::sharded::ShardedEngine;

    let (c, s) = bench_circuit();
    let delays = DelayModel::standard();

    let faulty =
        ShardedEngine::from_config(&EngineConfig::default().with_shards(4)).with_fault_plan(FaultPlan::seeded(7).panic_on_spawn(3));
    assert_task_panicked(faulty.try_run(&c, &s, &delays), "sharded");
    assert_eq!(faulty.fault_plan().injected().panics, 1);

    // The same engine value must be reusable after the contained panic.
    let clean = ShardedEngine::from_config(&EngineConfig::default().with_shards(4));
    let out = clean.try_run(&c, &s, &delays).expect("clean run after failure");
    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
}

#[test]
fn sharded_engine_shard_panic_is_contained() {
    // Kill one whole shard core (not just one node task): the other
    // shards' threads must still be joined and the error surfaced.
    use des::engine::sharded::ShardedEngine;

    let (c, s) = bench_circuit();
    let delays = DelayModel::standard();
    for target_shard in [0, 1, 3] {
        let faulty = ShardedEngine::from_config(&EngineConfig::default().with_shards(4))
            .with_fault_plan(FaultPlan::seeded(7).panic_in_shard(target_shard));
        assert_task_panicked(
            faulty.try_run(&c, &s, &delays),
            &format!("sharded (shard {target_shard} killed)"),
        );
    }
}

#[test]
fn sharded_engine_straggler_delays_do_not_change_observables() {
    use des::engine::sharded::ShardedEngine;

    let (c, s) = bench_circuit();
    let delays = DelayModel::standard();
    let engine = ShardedEngine::from_config(&EngineConfig::default().with_shards(4))
        .with_fault_plan(FaultPlan::seeded(5).straggler(0.2, Duration::from_millis(1)));
    let out = engine.try_run(&c, &s, &delays).expect("stragglers are benign");
    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
}

// ---------------------------------------------------------------------
// Forced trylock failures: bounded retry keeps the run correct, and the
// retry/backoff work is visible in the stats.
// ---------------------------------------------------------------------

#[test]
fn hj_engine_completes_under_forced_trylock_failures() {
    let c = kogge_stone_adder(4);
    let s = Stimulus::random_vectors(&c, 4, 2, 13);
    let delays = DelayModel::standard();

    let engine = HjEngine::from_config(&cfg(WORKERS))
        .with_fault_plan(FaultPlan::seeded(21).fail_trylock(0.5));
    let out = engine
        .try_run(&c, &s, &delays)
        .expect("bounded retry must ride out a 50% trylock failure rate");
    assert!(
        out.stats.lock_failures > 0,
        "injected lock failures should be counted"
    );
    assert!(out.stats.lock_retries > 0, "retries should be counted");
    assert!(out.stats.backoff_waits > 0, "backoff waits should be counted");

    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
}

#[test]
fn hj_engine_straggler_delays_do_not_change_observables() {
    let (c, s) = bench_circuit();
    let delays = DelayModel::standard();
    let engine = HjEngine::from_config(&cfg(WORKERS))
        .with_fault_plan(FaultPlan::seeded(5).straggler(0.2, Duration::from_millis(1)));
    let out = engine.try_run(&c, &s, &delays).expect("stragglers are benign");
    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
}

// ---------------------------------------------------------------------
// Deliberate wedge → watchdog trips within its deadline, with a
// populated stall snapshot.
// ---------------------------------------------------------------------

#[test]
fn hj_engine_wedge_trips_watchdog() {
    let (c, s) = bench_circuit();
    let engine = HjEngine::from_config(&cfg(WORKERS))
        .with_fault_plan(FaultPlan::seeded(1).wedged())
        .with_watchdog(Some(WEDGE_DEADLINE));
    let start = Instant::now();
    let result = engine.try_run(&c, &s, &DelayModel::standard());
    assert_no_progress(result, start.elapsed(), "hj");
}

#[test]
fn actor_engine_wedge_trips_watchdog() {
    let (c, s) = bench_circuit();
    let engine = ActorEngine::from_config(&cfg(WORKERS))
        .with_fault_plan(FaultPlan::seeded(1).wedged())
        .with_watchdog(Some(WEDGE_DEADLINE));
    let start = Instant::now();
    let result = engine.try_run(&c, &s, &DelayModel::standard());
    assert_no_progress(result, start.elapsed(), "actor");
}

#[test]
fn timewarp_engine_wedge_trips_watchdog() {
    let (c, s) = bench_circuit();
    let engine = TimeWarpEngine::from_config(&cfg(WORKERS))
        .with_fault_plan(FaultPlan::seeded(1).wedged())
        .with_watchdog(Some(WEDGE_DEADLINE));
    let start = Instant::now();
    let result = engine.try_run(&c, &s, &DelayModel::standard());
    assert_no_progress(result, start.elapsed(), "timewarp");
}

#[test]
fn sharded_engine_wedge_trips_watchdog() {
    // Every shard wedges at its first node activation; lookahead promises
    // must not count as progress, so the cross-shard stall is detected.
    use des::engine::sharded::ShardedEngine;

    let (c, s) = bench_circuit();
    let engine = ShardedEngine::from_config(&EngineConfig::default().with_shards(4))
        .with_fault_plan(FaultPlan::seeded(1).wedged())
        .with_watchdog(Some(WEDGE_DEADLINE));
    let start = Instant::now();
    let result = engine.try_run(&c, &s, &DelayModel::standard());
    assert_no_progress(result, start.elapsed(), "sharded");
}

#[test]
fn sharded_engine_migration_panic_surfaces_and_engine_survives() {
    // Kill a shard mid-migration (at the epoch barrier, after the plan is
    // agreed but before node state moves): the failure must surface as a
    // structured error, and the same engine must complete a clean run
    // afterwards with observables matching the sequential reference.
    use des::engine::sharded::ShardedEngine;
    use des::RebalancePolicy;

    let c = kogge_stone_adder(16);
    let s = Stimulus::skewed_vectors(&c, 48, 2, 0xD15EA5E, 3);
    let delays = DelayModel::standard();
    let policy = RebalancePolicy {
        epoch_events: 32,
        min_imbalance_pct: 5,
        max_moves: 16,
    };
    let base = EngineConfig::default().with_shards(4).with_rebalance(Some(policy));
    let faulty = ShardedEngine::from_config(
        &base.clone().with_fault_plan(FaultPlan::seeded(7).panic_on_migration(1)),
    );
    match faulty.try_run(&c, &s, &delays) {
        Err(SimError::TaskPanicked { payload, .. }) => {
            assert!(
                payload.contains("migration epoch"),
                "unexpected panic payload: {payload}"
            );
        }
        Err(other) => panic!("expected TaskPanicked, got: {other}"),
        Ok(_) => panic!("expected the injected migration panic to surface"),
    }
    assert_eq!(faulty.fault_plan().injected().panics, 1);

    // The mailbox fabric and migration bus must have drained: a clean
    // engine with the same rebalancing config runs to completion.
    let clean = ShardedEngine::from_config(&base);
    let out = clean.try_run(&c, &s, &delays).expect("clean run after failure");
    let seq = SeqWorksetEngine::new().run(&c, &s, &delays);
    check_equivalent(&seq, &out).unwrap();
    assert!(out.stats.rebalances >= 1, "rebalancing active on the clean run");
}

#[test]
fn galois_engine_wedge_trips_watchdog() {
    let (c, s) = bench_circuit();
    let engine = GaloisEngine::new(WORKERS)
        .with_fault_plan(FaultPlan::seeded(1).wedged())
        .with_watchdog(Some(WEDGE_DEADLINE));
    let start = Instant::now();
    let result = engine.try_run(&c, &s, &DelayModel::standard());
    assert_no_progress(result, start.elapsed(), "galois");
}

// ---------------------------------------------------------------------
// The pdes parallel kernel: same contract, driver-level API.
// ---------------------------------------------------------------------

mod pdes_kernel {
    use super::*;
    use pdes::{Ctx, Lp, ParKernel, SeqKernel, Topology, TopologyBuilder};
    use std::any::Any;

    struct Ticker {
        period: u64,
        count: u64,
    }

    impl Lp<u64> for Ticker {
        fn init(&mut self, ctx: &mut Ctx<u64>) {
            if self.count > 0 {
                ctx.schedule(self.period, 0);
            }
        }
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            ctx.send(0, 1, n);
            if n + 1 < self.count {
                ctx.schedule(self.period, n + 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    struct Counter {
        seen: Vec<(u64, u64)>,
    }

    impl Lp<u64> for Counter {
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            self.seen.push((ctx.now(), n));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn pipeline() -> (Topology, Vec<Box<dyn Lp<u64>>>) {
        let mut b = TopologyBuilder::new();
        let t = b.add_lp();
        let c = b.add_lp();
        b.connect(t, c, 1);
        let lps: Vec<Box<dyn Lp<u64>>> = vec![
            Box::new(Ticker { period: 3, count: 40 }),
            Box::new(Counter { seen: Vec::new() }),
        ];
        (b.build(), lps)
    }

    fn lps() -> Vec<Box<dyn Lp<u64>>> {
        vec![
            Box::new(Ticker { period: 3, count: 40 }),
            Box::new(Counter { seen: Vec::new() }),
        ]
    }

    #[test]
    fn injected_panic_surfaces_and_kernel_survives() {
        let (topology, first) = pipeline();
        let kernel = ParKernel::new(WORKERS)
            .with_fault_plan(FaultPlan::seeded(3).panic_on_spawn(1));
        match kernel.try_run(&topology, first, 1_000) {
            Err(SimError::TaskPanicked { payload, .. }) => {
                assert!(payload.contains("injected"), "payload: {payload}");
            }
            Err(other) => panic!("expected TaskPanicked, got: {other}"),
            Ok(_) => panic!("expected the injected panic to surface"),
        }

        // Fresh kernel over the same topology still matches the
        // sequential driver.
        let seq = SeqKernel::new().run(&topology, lps(), 1_000);
        let par = ParKernel::new(WORKERS)
            .try_run(&topology, lps(), 1_000)
            .expect("clean run after failure");
        let seen = |o: &pdes::RunOutcome<u64>| {
            o.lps[1].as_any().downcast_ref::<Counter>().unwrap().seen.clone()
        };
        assert_eq!(seen(&seq), seen(&par));
    }

    /// Ring of relays: the null-message promise protocol forces many
    /// activations (and so many trylock decisions), unlike the two-LP
    /// pipeline that drains in a handful of lock acquisitions.
    struct Relay(u64);
    impl Lp<u64> for Relay {
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            self.0 += 1;
            ctx.send(0, 4, n + 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    struct Seed;
    impl Lp<u64> for Seed {
        fn init(&mut self, ctx: &mut Ctx<u64>) {
            ctx.send(0, 4, 0);
        }
        fn handle(&mut self, n: u64, ctx: &mut Ctx<u64>) {
            ctx.send(0, 4, n + 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn ring() -> (Topology, impl Fn() -> Vec<Box<dyn Lp<u64>>>) {
        let mut b = TopologyBuilder::new();
        let s = b.add_lp();
        let r1 = b.add_lp();
        let r2 = b.add_lp();
        b.connect(s, r1, 4);
        b.connect(r1, r2, 4);
        b.connect(r2, s, 4);
        (b.build(), || {
            vec![Box::new(Seed), Box::new(Relay(0)), Box::new(Relay(0))]
        })
    }

    #[test]
    fn completes_under_forced_trylock_failures() {
        let (topology, mk) = ring();
        let kernel = ParKernel::new(WORKERS)
            .with_fault_plan(FaultPlan::seeded(17).fail_trylock(0.5));
        let par = kernel
            .try_run(&topology, mk(), 500)
            .expect("bounded retry must ride out a 50% trylock failure rate");
        assert!(par.stats.lock_retries > 0, "retries should be counted");
        assert!(par.stats.backoff_waits > 0, "backoff waits should be counted");

        let seq = SeqKernel::new().run(&topology, mk(), 500);
        let hops = |o: &pdes::RunOutcome<u64>| {
            (
                o.lps[1].as_any().downcast_ref::<Relay>().unwrap().0,
                o.lps[2].as_any().downcast_ref::<Relay>().unwrap().0,
            )
        };
        assert_eq!(hops(&seq), hops(&par));
    }

    #[test]
    fn wedge_trips_watchdog() {
        let (topology, first) = pipeline();
        let kernel = ParKernel::new(WORKERS)
            .with_fault_plan(FaultPlan::seeded(1).wedged())
            .with_watchdog(Some(WEDGE_DEADLINE));
        let start = Instant::now();
        let result = kernel.try_run(&topology, first, 1_000);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(8),
            "wedged run took {elapsed:?}; watchdog did not fire in time"
        );
        match result {
            Err(SimError::NoProgress { snapshot }) => {
                assert!(snapshot.stalled_for >= WEDGE_DEADLINE);
            }
            Err(other) => panic!("expected NoProgress, got: {other}"),
            Ok(_) => panic!("expected the wedge to trip the watchdog"),
        }
    }
}
