//! Cross-engine differential tests: every engine must produce identical
//! deterministic observables on every circuit family.

use std::sync::Arc;

use circuit::generators::{
    c17, fanout_tree, full_adder, inverter_chain, kogge_stone_adder, ripple_carry_adder,
    wallace_multiplier,
};
use circuit::{Circuit, DelayModel, Stimulus};
use des::engine::hj::{HjEngine, HjEngineConfig};
use des::engine::seq::SeqWorksetEngine;
use des::engine::seq_heap::SeqHeapEngine;
use des::engine::sharded::ShardedEngine;
use des::engine::{build, Engine, EngineConfig};
use des::validate::{check_against_oracle, check_conservation, check_equivalent};
use des::PartitionStrategy;
use galois::{GaloisEngine, GaloisSeqEngine};
use hj::HjRuntime;

fn all_engines(workers: usize) -> Vec<Box<dyn Engine>> {
    let rt = Arc::new(HjRuntime::new(workers));
    let cfg = EngineConfig::default().with_workers(workers);
    let sharded = |k: usize, s: PartitionStrategy| {
        ShardedEngine::from_config(&cfg.clone().with_shards(k).with_strategy(s))
    };
    vec![
        Box::new(SeqWorksetEngine::new()),
        Box::new(SeqHeapEngine::new()),
        Box::new(GaloisSeqEngine::new()),
        Box::new(HjEngine::with_config(Arc::clone(&rt), HjEngineConfig::default())),
        Box::new(GaloisEngine::new(workers)),
        build("actor", &cfg),
        build("timewarp", &cfg),
        // The sharded conservative engine, across shard counts and all
        // three partition strategies (K=1 degenerates to a sequential
        // core with zero cut traffic).
        Box::new(ShardedEngine::from_config(&cfg.clone().with_shards(1))),
        Box::new(sharded(2, PartitionStrategy::RoundRobin)),
        Box::new(sharded(4, PartitionStrategy::BfsLayered)),
        Box::new(sharded(8, PartitionStrategy::GreedyCut)),
    ]
}

fn check_all(circuit: &Circuit, stimulus: &Stimulus, workers: usize) {
    let delays = DelayModel::standard();
    let reference = SeqWorksetEngine::new().run(circuit, stimulus, &delays);
    check_conservation(&reference).unwrap();
    check_against_oracle(circuit, stimulus, &reference).unwrap();
    for engine in all_engines(workers) {
        let out = engine.run(circuit, stimulus, &delays);
        check_conservation(&out)
            .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
        check_equivalent(&reference, &out)
            .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
    }
}

#[test]
fn equivalence_on_c17() {
    let c = c17();
    check_all(&c, &Stimulus::random_vectors(&c, 12, 3, 101), 2);
}

#[test]
fn equivalence_on_full_adder() {
    let c = full_adder();
    check_all(&c, &Stimulus::random_vectors(&c, 16, 2, 102), 3);
}

#[test]
fn equivalence_on_inverter_chain() {
    let c = inverter_chain(40);
    check_all(&c, &Stimulus::random_vectors(&c, 10, 1, 103), 2);
}

#[test]
fn equivalence_on_fanout_tree() {
    let c = fanout_tree(4, 3);
    check_all(&c, &Stimulus::random_vectors(&c, 5, 4, 104), 4);
}

#[test]
fn equivalence_on_kogge_stone_16() {
    let c = kogge_stone_adder(16);
    check_all(&c, &Stimulus::random_vectors(&c, 4, 6, 105), 4);
}

#[test]
fn equivalence_on_ripple_adder() {
    let c = ripple_carry_adder(16);
    check_all(&c, &Stimulus::random_vectors(&c, 4, 2, 106), 2);
}

#[test]
fn equivalence_on_multiplier_8() {
    let c = wallace_multiplier(8);
    check_all(&c, &Stimulus::random_vectors(&c, 2, 5, 107), 4);
}

#[test]
fn equivalence_with_dense_timestamp_ties() {
    // period 1 maximizes simultaneous events: the hardest tie-ordering
    // regime for cross-engine agreement.
    let c = kogge_stone_adder(8);
    check_all(&c, &Stimulus::random_vectors(&c, 20, 1, 108), 4);
}

#[test]
fn equivalence_with_empty_stimulus() {
    let c = c17();
    check_all(&c, &Stimulus::empty(c.inputs().len()), 2);
}

#[test]
fn equivalence_with_partial_stimulus() {
    // Only some inputs driven: silent inputs still send NULLs, and the
    // engines must agree on the resulting partial activity.
    let c = c17();
    let mut events = vec![Vec::new(); c.inputs().len()];
    events[0] = vec![
        circuit::TimedValue { time: 1, value: circuit::Logic::One },
        circuit::TimedValue { time: 5, value: circuit::Logic::Zero },
    ];
    events[3] = vec![circuit::TimedValue { time: 2, value: circuit::Logic::One }];
    check_all(&c, &Stimulus::from_events(events), 2);
}

#[test]
fn equivalence_single_event() {
    let c = full_adder();
    let mut events = vec![Vec::new(); 3];
    events[1] = vec![circuit::TimedValue { time: 7, value: circuit::Logic::One }];
    check_all(&c, &Stimulus::from_events(events), 2);
}

#[test]
fn galois_forced_conflicts_preserve_observables() {
    // Abort-heavy differential test: force ~30% of ownership
    // acquisitions to conflict, driving the speculative abort / rollback
    // / retry machinery far harder than organic contention ever does.
    // Committed observables must still match the sequential oracle, and
    // the injected conflicts must be visible in the stats.
    use des::FaultPlan;

    let c = kogge_stone_adder(8);
    let s = Stimulus::random_vectors(&c, 6, 2, 109);
    let delays = DelayModel::standard();
    let reference = SeqWorksetEngine::new().run(&c, &s, &delays);

    let engine = GaloisEngine::new(3)
        .with_fault_plan(FaultPlan::seeded(29).force_conflicts(0.3));
    let out = engine
        .try_run(&c, &s, &delays)
        .expect("forced conflicts only abort-and-retry; the run must still complete");
    assert!(out.stats.aborts > 0, "forced conflicts should cause aborts");
    assert!(
        out.stats.lock_failures > 0,
        "injected conflicts should be counted as lock failures"
    );
    check_conservation(&out).unwrap();
    check_equivalent(&reference, &out).unwrap();
    check_against_oracle(&c, &s, &out).unwrap();
}
