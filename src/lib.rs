//! # hj-des — a Rust reproduction of the PMAM'15 HJlib parallel DES study
//!
//! Umbrella crate re-exporting the workspace members:
//!
//! * [`hj`] — Habanero-style async/finish runtime with the paper's
//!   fine-grained trylock/release-all extension.
//! * [`circuit`] — logic-circuit substrate (gates, netlists, generators,
//!   stimuli, functional reference evaluator).
//! * [`des`] — the discrete event simulation engines (the paper's primary
//!   contribution): sequential workset, global-heap, HJ parallel, actor,
//!   plus validation observables.
//! * [`galois`] — the Galois-style optimistic baseline runtime and engine.
//! * [`pdes`] — the generic conservative PDES kernel (full null-message
//!   protocol, cyclic topologies) with a queueing-network model — the
//!   paper's §6 future-work direction.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use circuit;
pub use des;
pub use galois;
pub use hj;
pub use pdes;
